package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop forbids silently discarded error results in the packages that sit
// under every transaction: a dropped error in the WAL or engine means a
// commit that "succeeded" without reaching disk, the exact failure class
// that corrupts all data models at once. Two shapes are flagged:
//
//	f.Close()            // bare call whose result set includes an error
//	_ = f.Close()        // error result blank-assigned
//	v, _ := g()          // error component blank-assigned
//
// Deferred calls (`defer f.Close()`) are exempt: they run on paths that are
// usually already failing, and the idiom is pervasive and visible.
// Intentional drops take a `//unidblint:ignore errdrop <why>` (or legacy
// `//nolint:errcheck`) comment.
type ErrDrop struct {
	// Packages limits enforcement to these import paths; empty means every
	// package the runner visits.
	Packages []string
}

// Name implements Analyzer.
func (ErrDrop) Name() string { return "errdrop" }

// Doc implements Analyzer.
func (ErrDrop) Doc() string {
	return "no discarded error results (bare calls or blank assigns) in WAL/engine/catalog paths"
}

// Run implements Analyzer.
func (ed ErrDrop) Run(pass *Pass) {
	if len(ed.Packages) > 0 {
		ok := false
		for _, p := range ed.Packages {
			if pass.Pkg.Path == p {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	for _, file := range pass.Pkg.Files {
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.DeferStmt:
				deferred[t.Call] = true
			case *ast.ExprStmt:
				if call, ok := t.X.(*ast.CallExpr); ok {
					if idx := errResultIndex(pass, call); idx >= 0 {
						pass.Reportf(call.Pos(), "result of %s includes an error that is discarded", callName(pass, call))
					}
				}
			case *ast.AssignStmt:
				ed.checkAssign(pass, t)
			case *ast.CallExpr:
				if !deferred[t] {
					ed.checkTaintedCall(pass, t)
				}
			}
			return true
		})
	}
}

// checkTaintedCall consults the interprocedural summaries one level deep: a
// call into a helper outside the checked packages that internally discards
// an error hides the drop from the intraprocedural scan, so it is reported
// at the call site here. Callees inside the checked packages are skipped —
// their drop is flagged directly in their own body, keeping the existing
// intraprocedural diagnostics unchanged. Deferred calls stay exempt, same
// as the direct-drop rule.
func (ed ErrDrop) checkTaintedCall(pass *Pass, call *ast.CallExpr) {
	if pass.Prog == nil || len(ed.Packages) == 0 {
		return
	}
	fn := resolvedCallee(pass.Pkg, call)
	if fn == nil {
		return
	}
	fi := pass.Prog.Funcs[fn]
	if fi == nil || !fi.DropsError {
		return
	}
	for _, p := range ed.Packages {
		if fi.Pkg.Path == p {
			return
		}
	}
	pass.Reportf(call.Pos(), "call to %s discards an error internally (at %s), outside errdrop's checked packages",
		fi.Name(), pass.Prog.shortPos(fi.DropPos))
}

// checkAssign flags `_ = call()` / `v, _ := call()` where the blank slot is
// the call's error result.
func (ed ErrDrop) checkAssign(pass *Pass, as *ast.AssignStmt) {
	// Only the multi-value form `a, _ := f()` and the single `_ = f()`.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		errIdx := errResultIndex(pass, call)
		if errIdx < 0 || errIdx >= len(as.Lhs) {
			return
		}
		if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(), "error result of %s is assigned to the blank identifier", callName(pass, call))
		}
		return
	}
	// Parallel assignment `a, b = f(), g()`.
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if errResultIndex(pass, call) < 0 {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(), "error result of %s is assigned to the blank identifier", callName(pass, call))
		}
	}
}

// errResultIndex returns the index of the error component in call's result
// tuple, or -1 when it has none. Conversions and builtin calls return -1.
func errResultIndex(pass *Pass, call *ast.CallExpr) int {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return -1
	}
	if isConversionOrBuiltin(pass, call) {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(tv.Type) {
			return 0
		}
		return -1
	}
}

func isConversionOrBuiltin(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[fun]
		switch obj.(type) {
		case *types.TypeName, *types.Builtin:
			return true
		}
	case *ast.SelectorExpr:
		if obj := pass.Pkg.Info.Uses[fun.Sel]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
	case *ast.ArrayType, *ast.MapType, *ast.StructType, *ast.InterfaceType, *ast.FuncType, *ast.ChanType:
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a short name for the callee, for diagnostics.
func callName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprText(pass.Fset, fun)
	default:
		return "call"
	}
}
