package lint

// This file pins the analyzer suite to this repository's invariants. The
// analyzers themselves are generic (and fixture-tested against synthetic
// packages); the configuration below is where the engine's actual contracts
// are written down.

// DefaultAnalyzers returns the suite configured for unidb:
//
//	lockcheck    — all packages; the engine/lock-manager/WAL mutexes are the
//	               backbone of every model's consistency.
//	errdrop      — wal, engine, catalog: a dropped error there is a commit
//	               that lied about durability.
//	exhaustive   — query AST (Expr, Clause) and the closed value/op/source
//	               vocabularies: a new kind must be wired everywhere before
//	               the lint passes.
//	determinism  — query executor merge/exec paths: the parallel executor
//	               must stay byte-identical to the serial one.
//	parallel-merge — the parallel executor's partial-result merge paths must
//	               iterate recorded chunk/group order, never a map range.
//	txnend       — core and query: a Begin without Commit/Abort wedges 2PL.
//	syncbarrier  — the WAL group-commit window: no path may acknowledge a
//	               committer (finishWindow, close of a done channel) before
//	               the durability barrier (durableBarrier) has run.
//	cowsafe      — the COW B+tree: a node marked shared is referenced by
//	               snapshots and must never be mutated in place; every
//	               writer path goes through mutable(), and the shared flag
//	               only ever moves false→true.
//	cachekey     — the result cache's key construction and the compiler's
//	               read-set computation: both must be pure (no map ranges,
//	               wall-clock reads, or randomness), or identical queries
//	               silently stop sharing cache entries.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		LockCheck{},
		ErrDrop{Packages: []string{
			"repro/internal/wal",
			"repro/internal/engine",
			"repro/internal/catalog",
		}},
		Exhaustive{
			Interfaces: []TypeRef{
				{Pkg: "repro/internal/query", Name: "Expr"},
				{Pkg: "repro/internal/query", Name: "Clause"},
			},
			Enums: []TypeRef{
				{Pkg: "repro/internal/mmvalue", Name: "Kind"},
				{Pkg: "repro/internal/query", Name: "SourceKind"},
				{Pkg: "repro/internal/wal", Name: "Op"},
			},
		},
		Determinism{Scope: []ScopeRef{
			{Pkg: "repro/internal/query", Files: []string{
				"exec.go", "eval.go", "parallel.go", "compile.go", "optimize.go",
				"vector.go", "csrroute.go",
			}},
			// The whole CSR package: its parallel frontier expansion must be
			// byte-identical to the serial walk, and its build scans feed a
			// cache keyed by version vectors.
			{Pkg: "repro/internal/csr"},
		}},
		ParallelMerge{Scope: []ScopeRef{
			{Pkg: "repro/internal/query", Files: []string{"parallel.go"}},
		}},
		TxnEnd{
			Packages:   []string{"repro/internal/core", "repro/internal/query"},
			BeginNames: []string{"Begin", "BeginSnapshot", "BeginSnapshotAt"},
			EndNames:   []string{"Commit", "Abort"},
		},
		SyncBarrier{
			Scope:    []ScopeRef{{Pkg: "repro/internal/wal", Files: []string{"committer.go"}}},
			Barriers: []string{"durableBarrier"},
			Acks:     []string{"finishWindow"},
		},
		CowSafe{
			Packages:    []string{"repro/internal/btree"},
			NodeType:    "node",
			SharedField: "shared",
			MintFuncs:   []string{"mutable"},
			WriterFuncs: []string{"insert", "split", "remove"},
		},
		CacheKey{Scope: []ScopeRef{
			{Pkg: "repro/internal/core", Files: []string{"resultcache.go"}},
			{Pkg: "repro/internal/query", Files: []string{"readset.go", "vector.go"}},
			// The CSR cache's validity token (drop epoch + version vector)
			// must be constructed purely, like the result cache's key.
			{Pkg: "repro/internal/csr", Files: []string{"cache.go"}},
		}},
	}
}

// DefaultLockClasses is the one table naming every mutex the engine cares
// about. A lock that participates in nesting but is missing here gets a
// lockorder diagnostic telling you to add it — declaring a new lock means
// adding a row here and ranking its class in DefaultLockOrder.
func DefaultLockClasses() LockClasses {
	return LockClasses{Refs: []LockClassRef{
		{Pkg: "repro/internal/shard", Type: "Router", Field: "cutMu", Class: "shard.cutMu"},
		{Pkg: "repro/internal/engine", Type: "Engine", Field: "cpMu", Class: "engine.cpMu"},
		{Pkg: "repro/internal/engine", Type: "Engine", Field: "stateMu", Class: "engine.stateMu"},
		{Pkg: "repro/internal/engine", Type: "Engine", Field: "commitMu", Class: "engine.commitMu"},
		{Pkg: "repro/internal/engine", Type: "Engine", Field: "mu", Class: "engine.mu"},
		{Pkg: "repro/internal/engine", Type: "Engine", Field: "subMu", Class: "engine.subMu"},
		{Pkg: "repro/internal/engine", Type: "lockManager", Field: "mu", Class: "engine.lockmgr.mu"},
		{Pkg: "repro/internal/engine", Type: "Replica", Field: "mu", Class: "engine.replica.mu"},
		{Pkg: "repro/internal/wal", Type: "committer", Field: "mu", Class: "wal.commit.mu"},
		{Pkg: "repro/internal/wal", Type: "Log", Field: "mu", Class: "wal.log.mu"},
		{Pkg: "repro/internal/core", Type: "DB", Field: "viewMu", Class: "core.viewMu"},
		{Pkg: "repro/internal/core", Type: "planCache", Field: "mu", Class: "core.plans.mu"},
		{Pkg: "repro/internal/core", Type: "resultCache", Field: "mu", Class: "core.results.mu"},
		{Pkg: "repro/internal/csr", Type: "Cache", Field: "mu", Class: "csr.cache.mu"},
		{Pkg: "repro/internal/binenc", Type: "dcShard", Field: "mu", Class: "binenc.deccache.mu"},
		{Pkg: "repro/internal/mmindex", Type: "JoinIndex", Field: "mu", Class: "mmindex.join.mu"},
		{Pkg: "repro/internal/sinew", Type: "Relation", Field: "mu", Class: "sinew.rel.mu"},
	}}
}

// DefaultLockOrder is the canonical global acquisition order, outermost lock
// first: every nesting edge in the whole program must go strictly downward
// in this list. The shard router's cut barrier is outermost — it is held
// (shared) across the whole second phase of a cross-shard commit, which
// reaches every engine-side lock below it, and held exclusively while a
// consistent cut snapshots each shard. Below it sits the checkpoint
// serialization chain
// (cpMu cuts while holding commitMu; commit publication holds commitMu
// across the WAL append and the tree apply under engine.mu), the middle is
// the WAL group-commit pair and the 2PL lock manager, and the tail is the
// read-side cache/view mutexes, which are leaves that never hold anything
// engine-side.
func DefaultLockOrder() []string {
	return []string{
		"shard.cutMu",
		"engine.cpMu",
		"engine.stateMu",
		"engine.commitMu",
		"engine.mu",
		"wal.commit.mu",
		"wal.log.mu",
		"engine.lockmgr.mu",
		"engine.subMu",
		"engine.replica.mu",
		"core.viewMu",
		"core.plans.mu",
		"core.results.mu",
		"csr.cache.mu",
		"binenc.deccache.mu",
		"mmindex.join.mu",
		"sinew.rel.mu",
	}
}

// DefaultSnapshotRoots lists the entry points of the snapshot read path:
// every Engine/Txn/Snapshot method a snapshot-mode caller can reach. Txn
// mutators are included deliberately — their locked-path lock traffic sits
// behind `t.snap == nil` guards the summary walker proves, so what remains
// reachable is exactly what a snapshot transaction can execute.
func DefaultSnapshotRoots() []FuncRef {
	const eng = "repro/internal/engine"
	names := []string{
		"Engine.BeginSnapshot", "Engine.BeginSnapshotAt",
		"Engine.SnapshotView", "Engine.SnapshotViewAt",
		"Engine.Snapshot", "Engine.VersionedSnapshot",
		"Txn.Get", "Txn.Scan", "Txn.ScanReverse", "Txn.collect",
		"Txn.KeyspaceNonEmpty", "Txn.Commit", "Txn.Abort", "Txn.finish",
		"Snapshot.Get", "Snapshot.Len", "Snapshot.Keyspaces",
		"Snapshot.Scan", "Snapshot.ScanReverse", "Snapshot.collect",
		"Txn.SnapshotVersionsFor", "Txn.SnapshotDropEpoch",
		"Snapshot.VersionsFor", "Snapshot.DropEpoch",
	}
	refs := make([]FuncRef, len(names))
	for i, n := range names {
		refs[i] = FuncRef{Pkg: eng, Name: n}
	}
	return refs
}

// DefaultProgramAnalyzers returns the whole-program suite:
//
//	lockorder    — the interprocedural lock-nesting graph must follow
//	               DefaultLockOrder and be acyclic (no potential deadlock).
//	snapshotpure — nothing reachable from the snapshot read roots touches
//	               the lock manager or a write-side mutex; PR 5's "zero
//	               lock-manager traffic for readers" as a checked invariant.
func DefaultProgramAnalyzers() []ProgramAnalyzer {
	return []ProgramAnalyzer{
		LockOrder{Order: DefaultLockOrder()},
		SnapshotPure{
			Roots: DefaultSnapshotRoots(),
			Forbidden: []string{
				"engine.lockmgr.mu",
				"engine.commitMu",
				"engine.cpMu",
				"wal.commit.mu",
				"wal.log.mu",
			},
			ForbiddenRecv: []TypeRef{
				{Pkg: "repro/internal/engine", Name: "lockManager"},
			},
		},
	}
}

// DefaultRunner returns the suite plus the repository's path suppressions.
func DefaultRunner() *Runner {
	return &Runner{
		Analyzers:        DefaultAnalyzers(),
		ProgramAnalyzers: DefaultProgramAnalyzers(),
		LockClasses:      DefaultLockClasses(),
		GuardField:       "snap",
		SuppressPaths: map[string][]string{
			// Examples are narrative code; they share the binary's module
			// but not the engine's invariants.
			"*": {"/examples/"},
		},
	}
}
