package lint

// This file pins the analyzer suite to this repository's invariants. The
// analyzers themselves are generic (and fixture-tested against synthetic
// packages); the configuration below is where the engine's actual contracts
// are written down.

// DefaultAnalyzers returns the suite configured for unidb:
//
//	lockcheck    — all packages; the engine/lock-manager/WAL mutexes are the
//	               backbone of every model's consistency.
//	errdrop      — wal, engine, catalog: a dropped error there is a commit
//	               that lied about durability.
//	exhaustive   — query AST (Expr, Clause) and the closed value/op/source
//	               vocabularies: a new kind must be wired everywhere before
//	               the lint passes.
//	determinism  — query executor merge/exec paths: the parallel executor
//	               must stay byte-identical to the serial one.
//	parallel-merge — the parallel executor's partial-result merge paths must
//	               iterate recorded chunk/group order, never a map range.
//	txnend       — core and query: a Begin without Commit/Abort wedges 2PL.
//	syncbarrier  — the WAL group-commit window: no path may acknowledge a
//	               committer (finishWindow, close of a done channel) before
//	               the durability barrier (durableBarrier) has run.
//	cowsafe      — the COW B+tree: a node marked shared is referenced by
//	               snapshots and must never be mutated in place; every
//	               writer path goes through mutable(), and the shared flag
//	               only ever moves false→true.
//	cachekey     — the result cache's key construction and the compiler's
//	               read-set computation: both must be pure (no map ranges,
//	               wall-clock reads, or randomness), or identical queries
//	               silently stop sharing cache entries.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		LockCheck{},
		ErrDrop{Packages: []string{
			"repro/internal/wal",
			"repro/internal/engine",
			"repro/internal/catalog",
		}},
		Exhaustive{
			Interfaces: []TypeRef{
				{Pkg: "repro/internal/query", Name: "Expr"},
				{Pkg: "repro/internal/query", Name: "Clause"},
			},
			Enums: []TypeRef{
				{Pkg: "repro/internal/mmvalue", Name: "Kind"},
				{Pkg: "repro/internal/query", Name: "SourceKind"},
				{Pkg: "repro/internal/wal", Name: "Op"},
			},
		},
		Determinism{Scope: []ScopeRef{
			{Pkg: "repro/internal/query", Files: []string{
				"exec.go", "eval.go", "parallel.go", "compile.go", "optimize.go",
			}},
		}},
		ParallelMerge{Scope: []ScopeRef{
			{Pkg: "repro/internal/query", Files: []string{"parallel.go"}},
		}},
		TxnEnd{
			Packages:   []string{"repro/internal/core", "repro/internal/query"},
			BeginNames: []string{"Begin", "BeginSnapshot", "BeginSnapshotAt"},
			EndNames:   []string{"Commit", "Abort"},
		},
		SyncBarrier{
			Scope:    []ScopeRef{{Pkg: "repro/internal/wal", Files: []string{"committer.go"}}},
			Barriers: []string{"durableBarrier"},
			Acks:     []string{"finishWindow"},
		},
		CowSafe{
			Packages:    []string{"repro/internal/btree"},
			NodeType:    "node",
			SharedField: "shared",
			MintFuncs:   []string{"mutable"},
			WriterFuncs: []string{"insert", "split", "remove"},
		},
		CacheKey{Scope: []ScopeRef{
			{Pkg: "repro/internal/core", Files: []string{"resultcache.go"}},
			{Pkg: "repro/internal/query", Files: []string{"readset.go"}},
		}},
	}
}

// DefaultRunner returns the suite plus the repository's path suppressions.
func DefaultRunner() *Runner {
	return &Runner{
		Analyzers: DefaultAnalyzers(),
		SuppressPaths: map[string][]string{
			// Examples are narrative code; they share the binary's module
			// but not the engine's invariants.
			"*": {"/examples/"},
		},
	}
}
