package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
)

// SyncBarrier guards the group-commit WAL rule: a commit may only be
// acknowledged after its bytes are durable. In code terms, every call to an
// acknowledgement function (one that releases waiting committers, e.g.
// finishWindow) — and every close() of a waiter channel — must be dominated
// on ALL paths by a call to a durability-barrier function (e.g.
// durableBarrier, which fsyncs or surfaces the error). The analyzer runs a
// must-have-barrier path walk over each scoped function:
//
//   - a barrier call sets the state on the current path;
//   - branch merges take the conjunction (a barrier only on one arm does not
//     survive the merge), loop bodies may run zero times, and switch/select
//     cases merge the same way;
//   - function literals, `go` statements, and deferred calls are analyzed
//     with a fresh (false) state — a goroutine or deferred acknowledgement
//     carries no ordering guarantee relative to the barrier;
//   - an acknowledgement reached while the state is false is reported.
//
// Acknowledging an ERROR is fine — the barrier function returns the fsync
// error and the acknowledgement hands it to waiters — the rule is purely
// that the barrier ran first, so no committer observes success (or failure)
// before the durability point. Functions named in Acks are themselves exempt
// (they are the acknowledgement primitive).
type SyncBarrier struct {
	// Scope lists (package path, file basenames) to enforce; every function
	// declared in a listed file is checked.
	Scope []ScopeRef
	// Barriers are function/method names whose call establishes durability.
	Barriers []string
	// Acks are function/method names whose call acknowledges waiters.
	Acks []string
	// AckChanPattern matches the rendered argument of close() calls that
	// release waiters (default `(?i)\bdone\b`, catching close(req.done)).
	AckChanPattern string
}

// Name implements Analyzer.
func (SyncBarrier) Name() string { return "syncbarrier" }

// Doc implements Analyzer.
func (SyncBarrier) Doc() string {
	return "commit acknowledgements must be dominated by the durability barrier on every path"
}

// Run implements Analyzer.
func (sb SyncBarrier) Run(pass *Pass) {
	var files []string
	found := false
	for _, ref := range sb.Scope {
		if ref.Pkg == pass.Pkg.Path {
			found, files = true, ref.Files
			break
		}
	}
	if !found {
		return
	}
	pat := sb.AckChanPattern
	if pat == "" {
		pat = `(?i)\bdone\b`
	}
	chk := &sbCheck{
		pass:      pass,
		barriers:  sb.Barriers,
		acks:      sb.Acks,
		ackChanRx: regexp.MustCompile(pat),
	}
	exempt := map[string]bool{}
	for _, a := range sb.Acks {
		exempt[a] = true
	}
	for _, file := range pass.Pkg.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		listed := len(files) == 0
		for _, want := range files {
			if base == want {
				listed = true
			}
		}
		if !listed {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || exempt[fn.Name.Name] {
				continue
			}
			state := false
			chk.walkStmts(fn.Body.List, &state)
		}
	}
}

type sbCheck struct {
	pass      *Pass
	barriers  []string
	acks      []string
	ackChanRx *regexp.Regexp
}

type sbClass int

const (
	sbNone sbClass = iota
	sbBarrier
	sbAck
)

// classify buckets one call as barrier, acknowledgement, or neither.
func (c *sbCheck) classify(call *ast.CallExpr) sbClass {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name == "close" && len(call.Args) == 1 {
		if c.ackChanRx.MatchString(exprText(c.pass.Fset, call.Args[0])) {
			return sbAck
		}
		return sbNone
	}
	for _, b := range c.barriers {
		if name == b {
			return sbBarrier
		}
	}
	for _, a := range c.acks {
		if name == a {
			return sbAck
		}
	}
	return sbNone
}

// scanNode processes the calls of one simple statement or expression subtree
// in source order, updating the must-have-barrier state and reporting
// acknowledgements that precede the barrier. Function literals are analyzed
// as independent bodies with a fresh state.
func (c *sbCheck) scanNode(n ast.Node, state *bool) {
	if n == nil {
		return
	}
	var calls []*ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		switch t := x.(type) {
		case *ast.FuncLit:
			st := false
			c.walkStmts(t.Body.List, &st)
			return false
		case *ast.CallExpr:
			calls = append(calls, t)
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
	for _, call := range calls {
		switch c.classify(call) {
		case sbBarrier:
			*state = true
		case sbAck:
			if !*state {
				c.report(call)
			}
		}
	}
}

func (c *sbCheck) report(call *ast.CallExpr) {
	c.pass.Reportf(call.Pos(),
		"commit acknowledged before the durability barrier: %s reachable with no preceding %v call on this path",
		exprText(c.pass.Fset, call.Fun), c.barriers)
}

// scanFresh analyzes a subtree whose execution order is decoupled from the
// surrounding path (go statements, deferred calls): no barrier from the
// enclosing path carries in, and none established inside carries out.
func (c *sbCheck) scanFresh(n ast.Node) {
	st := false
	c.scanNode(n, &st)
}

// walkStmts processes a statement list; the returned bool reports whether
// every path through it terminated.
func (c *sbCheck) walkStmts(stmts []ast.Stmt, state *bool) bool {
	for _, s := range stmts {
		if c.walkStmt(s, state) {
			return true
		}
	}
	return false
}

func (c *sbCheck) walkStmt(s ast.Stmt, state *bool) bool {
	switch t := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.walkStmts(t.List, state)
	case *ast.LabeledStmt:
		return c.walkStmt(t.Stmt, state)
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			c.scanNode(res, state)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// A deferred acknowledgement may run on panic paths that never
		// reached the barrier; analyze with a fresh state.
		c.scanFresh(t.Call)
		return false
	case *ast.GoStmt:
		c.scanFresh(t.Call)
		return false
	case *ast.IfStmt:
		if t.Init != nil {
			c.walkStmt(t.Init, state)
		}
		c.scanNode(t.Cond, state)
		thenState, elseState := *state, *state
		thenTerm := c.walkStmts(t.Body.List, &thenState)
		elseTerm := false
		if t.Else != nil {
			elseTerm = c.walkStmt(t.Else, &elseState)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*state = elseState
		case elseTerm:
			*state = thenState
		default:
			*state = thenState && elseState
		}
		return false
	case *ast.ForStmt:
		if t.Init != nil {
			c.walkStmt(t.Init, state)
		}
		if t.Cond != nil {
			c.scanNode(t.Cond, state)
		}
		bodyState := *state
		c.walkStmts(t.Body.List, &bodyState)
		if t.Post != nil {
			c.walkStmt(t.Post, &bodyState)
		}
		// The body may run zero times: keep the conjunction.
		*state = *state && bodyState
		return false
	case *ast.RangeStmt:
		c.scanNode(t.X, state)
		bodyState := *state
		c.walkStmts(t.Body.List, &bodyState)
		*state = *state && bodyState
		return false
	case *ast.SwitchStmt:
		if t.Init != nil {
			c.walkStmt(t.Init, state)
		}
		if t.Tag != nil {
			c.scanNode(t.Tag, state)
		}
		return c.walkCases(t.Body, state, !hasDefault(t.Body))
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			c.walkStmt(t.Init, state)
		}
		c.walkStmt(t.Assign, state)
		return c.walkCases(t.Body, state, !hasDefault(t.Body))
	case *ast.SelectStmt:
		if len(t.Body.List) == 0 {
			return true // select{} blocks forever
		}
		return c.walkCases(t.Body, state, false)
	default:
		// AssignStmt, ExprStmt, DeclStmt, SendStmt, IncDecStmt...
		c.scanNode(s, state)
		return false
	}
}

// walkCases analyzes each case against a copy of the entry state and merges
// the surviving states by conjunction; mayFallThrough keeps the entry state
// as a survivor (a switch without default may match nothing).
func (c *sbCheck) walkCases(body *ast.BlockStmt, state *bool, mayFallThrough bool) bool {
	entry := *state
	merged := true
	anySurvivor := false
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		caseState := entry
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				c.scanNode(e, &caseState)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, &caseState)
			}
			stmts = cc.Body
		}
		if !c.walkStmts(stmts, &caseState) {
			allTerm = false
			merged = merged && caseState
			anySurvivor = true
		}
	}
	if mayFallThrough {
		allTerm = false
		merged = merged && entry
		anySurvivor = true
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	if anySurvivor {
		*state = merged
	}
	return false
}
