// Package lint is unidb's in-tree static-analysis suite (the `unidblint`
// tool). It encodes engine invariants — lock pairing, error handling, AST
// exhaustiveness, executor determinism, transaction lifecycle — as
// compiler-adjacent checks that run on every verify, using only the standard
// library: go/parser + go/ast for syntax, go/types for semantics, and a
// hand-rolled source importer (no golang.org/x/tools dependency).
//
// The suite exists because one engine serves many data models here: a
// dropped error in the WAL, an unpaired mutex, or a half-wired AST node
// corrupts *every* model's answers at once, so the invariants are enforced
// mechanically rather than by review folklore.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/engine")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// SoftErrors collects type-checker complaints that did not prevent a
	// usable types.Package (the loader is lenient so analysis can proceed;
	// the build itself is verified separately by `go build`).
	SoftErrors []error
}

// Loader parses and type-checks packages from source. Module packages are
// resolved against the module root; standard-library packages are resolved
// against GOROOT/src and type-checked from source too (cgo disabled, so the
// pure-Go fallbacks are selected). This is the "hand-rolled importer": no
// export data, no x/tools, just recursive source type-checking with a cache.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	ctx      build.Context
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir (it walks
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false // select pure-Go files; we only need to type-check
	ctx.Compiler = "gc"
	if ctx.GOARCH == "" {
		ctx.GOARCH = runtime.GOARCH
	}
	if ctx.GOOS == "" {
		ctx.GOOS = runtime.GOOS
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  root,
		ModulePath: modPath,
		ctx:        ctx,
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
	}, nil
}

// findModule walks up from dir to a go.mod and returns (moduleDir, modulePath).
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ModulePackages returns the import paths of every buildable package under
// the module root (the expansion of "./..."), sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if _, err := l.ctx.ImportDir(path, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer so the loader can hand itself to
// types.Config.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Load type-checks the package at the given import path (module or stdlib),
// caching the result.
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(path, dir)
}

// LoadDir type-checks the package in dir under a synthetic import path —
// used by fixture tests to analyze testdata packages.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	return l.loadDir(path, dir)
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.SoftErrors = append(pkg.SoftErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// dirFor maps an import path to a source directory: the module's own
// packages live under ModuleDir, everything else must be standard library
// under GOROOT/src (the module has no external dependencies by design).
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	goroot := l.ctx.GOROOT
	if goroot == "" {
		goroot = runtime.GOROOT()
	}
	dir := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (not module-local, not stdlib)", path)
}
