// Package fixture seeds errdrop violations and clean counterparts.
package fixture

import "errors"

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func pair() (int, error) { return 0, errBoom }

type closer struct{}

func (closer) Close() error { return nil }

func okReturned() error { return mayFail() }

func okHandled() int {
	if err := mayFail(); err != nil {
		return 1
	}
	return 0
}

func okDeferExempt() {
	var c closer
	defer c.Close() // deferred cleanup is exempt by design
}

func okNoError() {
	f := func() int { return 1 }
	f()
}

func okConversion() {
	type myErr error
	_ = myErr(errBoom)
}

func badBareCall() {
	mayFail() // want `result of mayFail includes an error that is discarded`
}

func badBareMethod() {
	var c closer
	c.Close() // want `result of c\.Close includes an error that is discarded`
}

func badBlankAssign() {
	_ = mayFail() // want `error result of mayFail is assigned to the blank identifier`
}

func badBlankPair() int {
	v, _ := pair() // want `error result of pair is assigned to the blank identifier`
	return v
}

func okSuppressedOurs() {
	mayFail() //unidblint:ignore errdrop best-effort notification
}

func okSuppressedNolint() {
	mayFail() //nolint:errcheck
}
