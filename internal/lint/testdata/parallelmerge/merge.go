// Package fixture seeds parallel-merge violations and clean counterparts.
// Every function in this file is enforced (the file is listed in the
// analyzer's scope), mirroring internal/query/parallel.go.
package fixture

type partial struct {
	order  []string
	groups map[string]int
}

// okOrderedMerge iterates the recorded first-seen order and only indexes the
// map — the canonical deterministic merge shape.
func okOrderedMerge(partials []*partial) []int {
	var order []string
	groups := map[string]int{}
	for _, p := range partials {
		for _, id := range p.order {
			if _, ok := groups[id]; !ok {
				order = append(order, id)
			}
			groups[id] += p.groups[id]
		}
	}
	out := make([]int, 0, len(order))
	for _, id := range order {
		out = append(out, groups[id])
	}
	return out
}

// okChunkConcat merges per-chunk slices in chunk order.
func okChunkConcat(per [][]int) []int {
	var out []int
	for _, rows := range per {
		out = append(out, rows...)
	}
	return out
}

// badMapRangeMerge ranges over the group map directly.
func badMapRangeMerge(groups map[string]int) []int {
	var out []int
	for _, v := range groups { // want `range over a map in parallel merge path badMapRangeMerge`
		out = append(out, v)
	}
	return out
}

// badMapRangeInWorker hides the map range inside a function literal — the
// shape a worker goroutine body would take.
func badMapRangeInWorker(groups map[string]int) func() int {
	return func() int {
		total := 0
		for _, v := range groups { // want `range over a map in parallel merge path badMapRangeInWorker`
			total += v
		}
		return total
	}
}

// okSuppressed documents a genuinely order-insensitive exception.
func okSuppressed(groups map[string]int) int {
	total := 0
	//unidblint:ignore parallel-merge summing is order-insensitive
	for _, v := range groups {
		total += v
	}
	return total
}
