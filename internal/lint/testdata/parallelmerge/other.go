package fixture

// This file is NOT listed in the analyzer's scope, so only functions whose
// names match the parallel/merge pattern are enforced.

// buildRows is unenforced: map ranges here are the determinism analyzer's
// concern, not this one's.
func buildRows(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// mergeElsewhere matches the name pattern, so it is enforced even outside
// the listed files.
func mergeElsewhere(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over a map in parallel merge path mergeElsewhere`
		out = append(out, v)
	}
	return out
}

// runParallelStage matches the pattern too; a slice range is fine.
func runParallelStage(rows []int) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2)
	}
	return out
}
