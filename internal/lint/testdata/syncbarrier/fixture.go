// Package fixture exercises the syncbarrier analyzer: every acknowledgement
// (finishWindow call or close of a done channel) must be dominated by the
// durability barrier (durableBarrier) on all paths.
package fixture

type req struct {
	done chan struct{}
	lead chan struct{}
	err  error
}

type log struct{ n int }

func (l *log) writeWindow(batch []*req) error { return nil }

func (l *log) durableBarrier(err error) error { return err }

// finishWindow is the acknowledgement primitive itself and is exempt by name.
func (l *log) finishWindow(batch []*req, err error) {
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
}

// okWindow is the canonical shape: write, barrier, acknowledge.
func (l *log) okWindow(batch []*req) {
	err := l.writeWindow(batch)
	err = l.durableBarrier(err)
	l.finishWindow(batch, err)
}

// okBarrierBothBranches: a barrier on every arm dominates the ack.
func (l *log) okBarrierBothBranches(batch []*req, fast bool) {
	var err error
	if fast {
		err = l.durableBarrier(nil)
	} else {
		err = l.durableBarrier(l.writeWindow(batch))
	}
	l.finishWindow(batch, err)
}

// okErrReturn: terminated branches do not pollute the merge.
func (l *log) okErrReturn(batch []*req) error {
	err := l.writeWindow(batch)
	if err != nil {
		return err
	}
	err = l.durableBarrier(err)
	l.finishWindow(batch, err)
	return err
}

// okSwitchDefault: every case including default passes the barrier.
func (l *log) okSwitchDefault(batch []*req, mode int) {
	switch mode {
	case 0:
		_ = l.durableBarrier(nil)
	default:
		_ = l.durableBarrier(nil)
	}
	l.finishWindow(batch, nil)
}

// okCloseAfterBarrier: an inlined acknowledgement after the barrier.
func (l *log) okCloseAfterBarrier(r *req) {
	r.err = l.durableBarrier(nil)
	close(r.done)
}

// okCloseLead: promoting the next leader releases no committer.
func (l *log) okCloseLead(r *req) {
	close(r.lead)
}

// badFinishBeforeBarrier acknowledges straight after the write.
func (l *log) badFinishBeforeBarrier(batch []*req) {
	err := l.writeWindow(batch)
	l.finishWindow(batch, err) // want `commit acknowledged before the durability barrier`
	_ = l.durableBarrier(err)
}

// badBranchSkipsBarrier: one arm reaches the ack without the barrier.
func (l *log) badBranchSkipsBarrier(batch []*req, fast bool) {
	err := l.writeWindow(batch)
	if !fast {
		err = l.durableBarrier(err)
	}
	l.finishWindow(batch, err) // want `commit acknowledged before the durability barrier`
}

// badSwitchNoDefault: a tag switch without default may match no case.
func (l *log) badSwitchNoDefault(batch []*req, mode int) {
	switch mode {
	case 0:
		_ = l.durableBarrier(nil)
	case 1:
		_ = l.durableBarrier(nil)
	}
	l.finishWindow(batch, nil) // want `commit acknowledged before the durability barrier`
}

// badEarlyClose releases a waiter channel before the barrier.
func (l *log) badEarlyClose(r *req) {
	close(r.done) // want `commit acknowledged before the durability barrier`
	r.err = l.durableBarrier(nil)
}

// badDeferredAck: a deferred acknowledgement can fire on panic paths that
// never reached the barrier.
func (l *log) badDeferredAck(batch []*req) {
	defer l.finishWindow(batch, nil) // want `commit acknowledged before the durability barrier`
	_ = l.durableBarrier(l.writeWindow(batch))
}

// badGoAck: a goroutine's acknowledgement has no ordering guarantee even
// when spawned after the barrier returned.
func (l *log) badGoAck(batch []*req) {
	_ = l.durableBarrier(nil)
	go func() {
		l.finishWindow(batch, nil) // want `commit acknowledged before the durability barrier`
	}()
}

// badLoopAck: the body's first iteration runs before any barrier.
func (l *log) badLoopAck(batch []*req) {
	for i := 0; i < len(batch); i++ {
		l.finishWindow(batch[i:i+1], nil) // want `commit acknowledged before the durability barrier`
		_ = l.durableBarrier(nil)
	}
}
