package fixture

import (
	"math/rand" // want `import of math/rand in a cache-key path`
)

func badJitter() int {
	return rand.Intn(3)
}
