// Package fixture seeds cachekey violations and clean counterparts.
package fixture

import (
	"sort"
	"time"
)

func okSortedNames(params map[string]int) []string {
	names := make([]string, 0, len(params))
	//unidblint:ignore cachekey collect-then-sort is iteration-order independent
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func okRangeSlice(parts []string) string {
	key := ""
	for _, p := range parts {
		key += "\x00" + p
	}
	return key
}

func okSuppliedInstant(now time.Time, freshNano int64) time.Duration {
	// Validity decisions on a caller-supplied instant stay pure.
	return now.Sub(time.Unix(0, freshNano))
}

func badMapRangeKey(params map[string]int) string {
	key := ""
	for name := range params { // want `range over a map in a cache-key path`
		key += name
	}
	return key
}

func badFreshness() int64 {
	return time.Now().UnixNano() // want `time\.Now in a cache-key path`
}
