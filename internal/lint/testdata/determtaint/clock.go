package determtaint

import "time"

// nowMillis is outside the analyzer scope, so its time.Now is not reported
// directly — but callers in scoped files are tainted by it.
func nowMillis() int64 {
	return time.Now().UnixMilli()
}

// stamp is deterministic: calling it from scope is fine.
func stamp(v int64) int64 { return v * 2 }
