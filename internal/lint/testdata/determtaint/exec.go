// Package determtaint exercises the one-level interprocedural upgrade of
// the determinism analyzer: only exec.go is in scope, and clock.go hides a
// time.Now behind a helper. The direct diagnostics in scope must behave as
// before; the call into the out-of-scope helper must now be flagged too.
package determtaint

import "time"

// merge is the scoped executor path.
func merge(items []int) int64 {
	direct := time.Now().UnixNano() // want `time\.Now in a deterministic executor path`
	tainted := nowMillis()          // want `call to nowMillis reads the wall clock \(time\.Now at clock\.go:\d+\) in a deterministic executor path`
	clean := stamp(int64(len(items)))
	return direct + tainted + clean
}
