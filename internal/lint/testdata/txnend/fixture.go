// Package fixture seeds txnend violations and clean counterparts, modeled
// on engine.Begin/Commit/Abort.
package fixture

import "errors"

var errBusy = errors.New("busy")

// DB mimics the engine.
type DB struct{ closed bool }

// Txn mimics engine.Txn.
type Txn struct{ done bool }

// Begin starts a transaction.
func (db *DB) Begin() (*Txn, error) {
	if db.closed {
		return nil, errBusy
	}
	return &Txn{}, nil
}

// Commit finishes a transaction.
func (t *Txn) Commit() error { t.done = true; return nil }

// Abort rolls a transaction back.
func (t *Txn) Abort() { t.done = true }

// Put writes through a transaction.
func (t *Txn) Put(k string) error {
	if t.done {
		return errBusy
	}
	return nil
}

func okCommitOrAbort(db *DB) error {
	t, err := db.Begin()
	if err != nil {
		return err
	}
	if err := t.Put("a"); err != nil {
		t.Abort()
		return err
	}
	return t.Commit()
}

func okDeferAbort(db *DB) error {
	t, err := db.Begin()
	if err != nil {
		return err
	}
	defer t.Abort()
	return t.Put("x")
}

func okEscapesToCaller(db *DB) (*Txn, error) {
	t, err := db.Begin()
	return t, err
}

func consume(t *Txn) {}

func okHandoff(db *DB) error {
	t, err := db.Begin()
	if err != nil {
		return err
	}
	consume(t) // responsibility visibly transfers
	return nil
}

func okNilCheckForm(db *DB) error {
	t, err := db.Begin()
	if t == nil {
		return err
	}
	return t.Commit()
}

func badEarlyReturn(db *DB, c bool) error {
	t, err := db.Begin() // want `transaction t may reach the exit on line \d+ without Commit or Abort`
	if err != nil {
		return err
	}
	if c {
		return errBusy // leaks the transaction
	}
	return t.Commit()
}

func badNeverFinished(db *DB) {
	t, err := db.Begin() // want `transaction t may reach the exit on line \d+ without Commit or Abort`
	if err != nil {
		return
	}
	_ = t.Put("x") //unidblint:ignore errdrop not under test here
}

func badBlank(db *DB) {
	_, _ = db.Begin() // want `transaction from db\.Begin is discarded with the blank identifier`
}
