// Package errdroptaint exercises the one-level interprocedural upgrade of
// the errdrop analyzer: this package is in the checked set, the helper
// package is not. Direct drops here keep their intraprocedural diagnostics;
// a call routed through the helper's internal drop is now flagged at the
// call site.
package errdroptaint

import "fixture/errdroptaint/helper"

func commit() {
	helper.Flush() // want `call to Flush discards an error internally \(at helper\.go:\d+\), outside errdrop's checked packages`
	localDrop()
}

// localDrop is in-package: its drop is reported directly, exactly as the
// intraprocedural analyzer always did, and the call above is NOT tainted.
func localDrop() {
	mkErr() // want `result of mkErr includes an error that is discarded`
}

func mkErr() error { return nil }

// closer defers through the tainted helper: deferred calls stay exempt.
func closer() {
	defer helper.Flush()
}

// relay propagates properly: no diagnostic.
func relay() error {
	return helper.Sync()
}
