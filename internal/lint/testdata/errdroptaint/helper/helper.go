// Package helper sits outside errdrop's checked packages: its own dropped
// error is not reported directly, but checked callers that route through it
// must be tainted.
package helper

import "errors"

// Flush discards its inner error — the drop the caller-side taint points at.
func Flush() {
	write()
}

func write() error { return errors.New("disk full") }

// Sync is clean: it propagates the error.
func Sync() error {
	return write()
}
