// Package snapshotpure exercises the interprocedural snapshot-purity
// analyzer: a miniature engine whose transaction type serves both a locked
// path and a snapshot path behind a `snap == nil` guard. The analyzer must
// prune everything the guard proves unreachable for snapshot transactions
// (the false-positive half) and still catch an unguarded write-side
// acquisition and a lock-manager call reached through a helper (the
// true-positive half).
package snapshotpure

import "sync"

type lockMgr struct{ mu sync.Mutex }

func (m *lockMgr) acquire() {
	m.mu.Lock()
	m.mu.Unlock()
}

func (m *lockMgr) releaseAll() {
	m.mu.Lock()
	m.mu.Unlock()
}

type Snapshot struct{ v int }

type Engine struct {
	mu       sync.Mutex
	commitMu sync.Mutex
	locks    lockMgr
}

type Txn struct {
	e    *Engine
	snap *Snapshot
}

// Get is the well-behaved root: its lock-manager traffic sits behind the
// snap == nil guard (by negation: the snapshot branch returns), so the
// analyzer must not report it.
func (t *Txn) Get() int {
	if t.snap != nil {
		return snapRead(t.snap)
	}
	t.e.locks.acquire()
	t.e.mu.Lock()
	t.e.mu.Unlock()
	return 0
}

// finish is reached from Commit; its lock-manager call is guarded the other
// way around (explicit snap == nil branch) and must also be pruned.
func (t *Txn) finish() {
	if t.snap == nil {
		t.e.locks.releaseAll()
	}
}

func snapRead(s *Snapshot) int { return s.v }

// Commit forgets the guard: the commit barrier is acquired on every path,
// snapshot transactions included, and a helper drags in the lock manager.
func (t *Txn) Commit() {
	t.e.commitMu.Lock() // want `snapshot read path acquires write-side mutex fix\.commitMu`
	t.e.commitMu.Unlock()
	publish(t.e)
	t.finish()
}

// publish is only reachable through Commit; the diagnostic must name the
// path that got here.
func publish(e *Engine) {
	e.locks.acquire() // want `snapshot read path calls lock-manager method lockMgr\.acquire \(reached via Txn\.Commit → publish\)`
}

// Abort takes the barrier unguarded too, but the site is annotated as
// intentional: the ignore comment must suppress it.
func (t *Txn) Abort() {
	//unidblint:ignore snapshotpure fixture: intentional unguarded barrier
	t.e.commitMu.Lock()
	t.e.commitMu.Unlock()
}
