// Package fixture seeds exhaustive violations and clean counterparts: Node
// mirrors the query AST interfaces, Color mirrors the value-kind enums.
package fixture

// Node is a closed interface: every concrete implementation in this package
// must be covered by type switches (or an explicit default).
type Node interface{ node() }

type Add struct{}

type Neg struct{}

type Lit struct{ V int }

func (*Add) node() {}

func (*Neg) node() {}

func (Lit) node() {}

// Color is a closed enum: switches must cover every declared constant.
type Color int

// Colors.
const (
	Red Color = iota
	Green
	Blue
	// Crimson aliases Red: covering one covers both.
	Crimson = Red
)

func okAllNodes(n Node) int {
	switch n.(type) {
	case *Add:
		return 1
	case *Neg:
		return 2
	case Lit:
		return 3
	}
	return 0
}

func okDefaultNode(n Node) int {
	switch n.(type) {
	case *Add:
		return 1
	default:
		return 0
	}
}

func okValueVariant(n Node) int {
	// Pointer cases are accepted for value receivers and vice versa.
	switch n.(type) {
	case *Add, *Neg, *Lit:
		return 1
	}
	return 0
}

func badMissingNodes(n Node) int {
	switch n.(type) { // want `type switch over fixture\.Node is missing cases: Lit, Neg`
	case *Add:
		return 1
	}
	return 0
}

func okAllColors(c Color) int {
	switch c {
	case Red:
		return 1
	case Green:
		return 2
	case Blue:
		return 3
	}
	return 0
}

func okAliasCovers(c Color) int {
	switch c {
	case Crimson, Green, Blue:
		return 1
	}
	return 0
}

func okDefaultColor(c Color) int {
	switch c {
	case Red:
		return 1
	default:
		return 0
	}
}

func badMissingColor(c Color) int {
	switch c { // want `switch over fixture\.Color is missing cases: Blue`
	case Red:
		return 1
	case Green:
		return 2
	}
	return 0
}

func okUnrelatedSwitch(x int) int {
	// Switches over unconfigured types are never checked.
	switch x {
	case 1:
		return 1
	}
	return 0
}
