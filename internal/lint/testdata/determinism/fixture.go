// Package fixture seeds determinism violations and clean counterparts.
package fixture

import (
	"sort"
	"time"
)

func okSortedKeys(m map[string]int) []string {
	//unidblint:ignore determinism keys are sorted before use below
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //unidblint:ignore determinism sorted below
	}
	sort.Strings(keys)
	return keys
}

func okRangeSlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

func okMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v // writing a map from a map is order-insensitive
	}
	return out
}

func okLocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		local := []int{}
		for _, v := range vs {
			local = append(local, v)
		}
		total += len(local)
	}
	return total
}

func okSince(t0 time.Time) time.Duration {
	// Only time.Now is forbidden; arithmetic on supplied times is fine.
	return t0.Sub(t0)
}

func badNow() int64 {
	return time.Now().Unix() // want `time\.Now in a deterministic executor path`
}

func badMapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys while ranging over a map: iteration order is nondeterministic`
	}
	return keys
}
