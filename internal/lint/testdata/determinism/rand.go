package fixture

import (
	"math/rand" // want `import of math/rand in a deterministic executor path`
)

func badRand() int {
	return rand.Intn(3)
}
