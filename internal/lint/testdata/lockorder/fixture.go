// Package lockorder exercises the whole-program lock-acquisition-order
// analyzer: a declared order over classes A < B < D < E, one direct
// inversion, one inversion reached through a callee's summary, a cycle
// between two undeclared mutexes, and a deliberately suppressed inversion.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

// X and Y are deliberately NOT declared in the order table.
type X struct{ mu sync.Mutex }
type Y struct{ mu sync.Mutex }

var (
	ga A
	gb B
	gd D
	ge E
	gx X
	gy Y
)

// good nests in the declared order: no diagnostic.
func good() {
	ga.mu.Lock()
	gb.mu.Lock()
	gb.mu.Unlock()
	ga.mu.Unlock()
}

// bad acquires A while holding D — D ranks after A.
func bad() {
	gd.mu.Lock()
	ga.mu.Lock() // want `acquires fix\.A while holding fix\.D: contradicts declared lock order`
	ga.mu.Unlock()
	gd.mu.Unlock()
}

// acquiresB is a leaf helper; on its own it creates no nesting edge.
func acquiresB() {
	gb.mu.Lock()
	gb.mu.Unlock()
}

// acquiresE is a leaf helper ranked last; outerOK calling it under A is fine.
func acquiresE() {
	ge.mu.Lock()
	ge.mu.Unlock()
}

// outerOK holds A across a call that may acquire E: A < E, no diagnostic.
func outerOK() {
	ga.mu.Lock()
	acquiresE()
	ga.mu.Unlock()
}

// outerBad holds E across a call that may acquire B — only the summary walk
// can see this inversion; there is no direct E/B nesting anywhere.
func outerBad() {
	ge.mu.Lock()
	acquiresB() // want `call to acquiresB may acquire fix\.B while fix\.E is held`
	ge.mu.Unlock()
}

// cycleOne and cycleTwo nest two undeclared mutexes in opposite orders: both
// participants are reported as unranked, and the second acquisition closes a
// cycle. Neither edge can contradict the declared order (the classes are not
// in it), so only the cycle check catches the deadlock shape.
func cycleOne() {
	gx.mu.Lock()
	gy.mu.Lock() // want `mutex lockorder\.[XY]\.mu participates in lock nesting`
	gy.mu.Unlock()
	gx.mu.Unlock()
}

func cycleTwo() {
	gy.mu.Lock()
	gx.mu.Lock() // want `lock-order cycle lockorder\.X\.mu → lockorder\.Y\.mu: potential deadlock`
	gx.mu.Unlock()
	gy.mu.Unlock()
}

// suppressed inverts D under B but is annotated: the diagnostic must not
// survive the ignore comment.
func suppressed() {
	gd.mu.Lock()
	//unidblint:ignore lockorder fixture: intentional inversion
	gb.mu.Lock()
	gb.mu.Unlock()
	gd.mu.Unlock()
}

// localOnly uses a function-local mutex: locals cannot participate in a
// global order and must be excluded entirely.
func localOnly() {
	var mu sync.Mutex
	ga.mu.Lock()
	mu.Lock()
	mu.Unlock()
	ga.mu.Unlock()
}
