// Package cowsafe is a fixture for the cowsafe analyzer: a miniature
// copy-on-write node with good and bad writer paths.
package cowsafe

import "sync/atomic"

type node struct {
	leaf     bool
	shared   atomic.Bool
	gen      int
	keys     [][]byte
	children []*node
}

// mutable is the copy-on-write gate (MintFuncs in the test config).
func mutable(n *node) *node {
	if !n.shared.Load() {
		return n
	}
	cp := &node{leaf: n.leaf}
	cp.keys = append(cp.keys, n.keys...)
	cp.children = append(cp.children, n.children...)
	for _, c := range cp.children {
		c.shared.Store(true)
	}
	return cp
}

// insert is an allowlisted writer (WriterFuncs in the test config): its
// contract is that callers pass a minted node.
func insert(n *node, k []byte) {
	n.keys = append(n.keys, k)
}

func badDirectWrite(n *node) {
	n.keys[0] = nil // want `not proven mutable`
	n.leaf = true   // want `not proven mutable`
}

func badIncDec(n *node) {
	n.gen++ // want `not proven mutable`
}

func goodMinted(n *node) {
	m := mutable(n)
	m.keys[0] = nil
	m.leaf = true
}

func goodAlias(n *node) {
	m := mutable(n)
	o := m
	o.leaf = false
}

func goodFresh() *node {
	cp := &node{leaf: true}
	cp.keys = append(cp.keys, nil)
	np := new(node)
	np.leaf = true
	return cp
}

func badDeepWrite(n *node) {
	m := mutable(n)
	// mutable(n) does not make n's children private: writing through a
	// non-identifier owner must be rebound through the gate first.
	m.children[0].keys = nil // want `non-local node expression`
}

func badCopyInto(n *node, src [][]byte) {
	copy(n.keys, src) // want `not proven mutable`
}

func badUnshare(n *node) {
	n.shared.Store(false) // want `monotonic`
}

func badUnshareVar(n *node, v bool) {
	n.shared.Store(v) // want `monotonic`
}

func goodShare(n *node) {
	n.shared.Store(true)
}

func suppressed(n *node) {
	//unidblint:ignore cowsafe fixture exercises suppression
	n.leaf = true
}
