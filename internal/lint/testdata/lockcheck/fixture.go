// Package fixture seeds lockcheck violations and clean counterparts.
package fixture

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func okDefer(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func okExplicit(s *S) int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

func okBranches(s *S, c bool) int {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

func okDeferredLiteral(s *S) {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

func okReadLock(s *S) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func okLoopBalanced(s *S, xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

func okSwitch(s *S, k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch k {
	case 0:
		return s.n
	case 1:
		return -s.n
	}
	return 0
}

func badNeverReleased(s *S) {
	s.mu.Lock() // want `s\.mu is locked here but not released on all paths`
	s.n++
}

func badEarlyReturn(s *S, c bool) int {
	s.mu.Lock() // want `s\.mu is locked here but not released on all paths`
	if c {
		return 1 // leaks the lock
	}
	s.mu.Unlock()
	return 0
}

func badReadLock(s *S) int {
	s.rw.RLock() // want `s\.rw \(read\) is locked here but not released on all paths`
	return s.n
}

func badWrongFlavor(s *S) {
	s.rw.RLock() // want `s\.rw \(read\) is locked here but not released on all paths`
	s.rw.Unlock()
}

func badSwitchCase(s *S, k int) int {
	s.mu.Lock() // want `s\.mu is locked here but not released on all paths`
	switch k {
	case 0:
		s.mu.Unlock()
		return 1
	case 1:
		return 2 // leaks
	default:
		s.mu.Unlock()
	}
	return 0
}

func okSuppressed(s *S) {
	s.mu.Lock() //unidblint:ignore lockcheck handed to caller by contract
	s.n++
}
