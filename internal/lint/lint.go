package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the short identifier used in diagnostics and suppression
	// comments ("lockcheck", "errdrop", ...).
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run inspects one package and reports findings through the pass.
	Run(pass *Pass)
}

// ProgramAnalyzer is an invariant checker that needs the whole program: the
// call graph and per-function summaries over every loaded package, rather
// than one package at a time.
type ProgramAnalyzer interface {
	Name() string
	Doc() string
	// RunProgram inspects the whole program and reports findings through
	// the pass (whose Pkg field is nil — diagnostics may land anywhere).
	RunProgram(prog *Program, pass *Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Pkg  *Package
	Fset *token.FileSet
	// Prog is the whole-program view (call graph + summaries) when the
	// runner built one; per-package analyzers may consult it for
	// interprocedural facts. Nil in bare single-analyzer harnesses.
	Prog     *Program
	analyzer string
	sink     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Runner applies a set of analyzers over loaded packages with suppression.
type Runner struct {
	Analyzers []Analyzer
	// ProgramAnalyzers run once over the whole loaded program (all packages
	// of a Run call together) instead of per package.
	ProgramAnalyzers []ProgramAnalyzer
	// LockClasses names the mutexes the interprocedural summaries track.
	LockClasses LockClasses
	// GuardField is the struct field whose nil-ness separates the snapshot
	// read path from the locked path ("snap"); "" disables guard tracking.
	GuardField string
	// SuppressPaths maps analyzer name (or "*" for all) to slash-separated
	// path fragments; a diagnostic whose file path contains the fragment as
	// a run of complete, slash-bounded segments is dropped. This is the
	// per-path suppression layer: e.g. generated code or a package that
	// intentionally trades an invariant away.
	SuppressPaths map[string][]string
}

// Run loads each import path and applies every analyzer, returning the
// surviving diagnostics sorted by position.
func (r *Runner) Run(l *Loader, paths []string) ([]Diagnostic, error) {
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return r.RunPackages(l, pkgs), nil
}

// RunPackages applies every analyzer to the given already-loaded packages:
// per-package analyzers to each in turn, program analyzers once over the
// whole set, all sharing one interprocedural Program.
func (r *Runner) RunPackages(l *Loader, pkgs []*Package) []Diagnostic {
	prog := BuildProgram(l.Fset, pkgs, r.LockClasses, r.GuardField)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, r.runPackage(l, pkg, prog)...)
	}
	if len(r.ProgramAnalyzers) > 0 {
		var files []*ast.File
		for _, pkg := range pkgs {
			files = append(files, pkg.Files...)
		}
		ignores := collectIgnores(l.Fset, files)
		for _, pa := range r.ProgramAnalyzers {
			pass := &Pass{
				Fset:     l.Fset,
				Prog:     prog,
				analyzer: pa.Name(),
				sink: func(d Diagnostic) {
					if !r.suppressed(d, ignores) {
						diags = append(diags, d)
					}
				},
			}
			pa.RunProgram(prog, pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// RunPackage applies every per-package analyzer to one already-loaded
// package, building a single-package program for interprocedural facts.
func (r *Runner) RunPackage(l *Loader, pkg *Package) []Diagnostic {
	prog := BuildProgram(l.Fset, []*Package{pkg}, r.LockClasses, r.GuardField)
	return r.runPackage(l, pkg, prog)
}

func (r *Runner) runPackage(l *Loader, pkg *Package, prog *Program) []Diagnostic {
	ignores := collectIgnores(l.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range r.Analyzers {
		pass := &Pass{
			Pkg:      pkg,
			Fset:     l.Fset,
			Prog:     prog,
			analyzer: a.Name(),
			sink: func(d Diagnostic) {
				if !r.suppressed(d, ignores) {
					diags = append(diags, d)
				}
			},
		}
		a.Run(pass)
	}
	return diags
}

// ignoreKey identifies one line-level suppression.
type ignoreKey struct {
	file     string
	line     int
	analyzer string // "" means all analyzers
}

// collectIgnores scans comments for line-level suppressions. Two syntaxes:
//
//	//unidblint:ignore <analyzer> [reason]   (our own)
//	//nolint:errcheck                        (pre-existing idiom → errdrop)
//
// A suppression applies to diagnostics on its own line and the line below
// (so it can sit above the offending statement).
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey]bool {
	ignores := map[ignoreKey]bool{}
	add := func(pos token.Position, analyzer string) {
		ignores[ignoreKey{pos.Filename, pos.Line, analyzer}] = true
		ignores[ignoreKey{pos.Filename, pos.Line + 1, analyzer}] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "unidblint:ignore"); ok {
					fields := strings.Fields(rest)
					name := ""
					if len(fields) > 0 {
						name = fields[0]
					}
					add(fset.Position(c.Pos()), name)
				}
				if strings.HasPrefix(text, "nolint:errcheck") {
					add(fset.Position(c.Pos()), "errdrop")
				}
			}
		}
	}
	return ignores
}

func (r *Runner) suppressed(d Diagnostic, ignores map[ignoreKey]bool) bool {
	if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, ""}] {
		return true
	}
	slashed := filepath.ToSlash(d.Pos.Filename)
	for _, key := range []string{d.Analyzer, "*"} {
		for _, frag := range r.SuppressPaths[key] {
			if pathHasSegments(slashed, frag) {
				return true
			}
		}
	}
	return false
}

// pathHasSegments reports whether the slash-separated path contains the
// fragment as a run of complete path segments: fragment "core" matches
// "internal/core/core.go" but not "internal/colstore/colstore.go", and
// "examples/basic" matches only those two adjacent segments. A plain
// substring match would conflate "core" with every path merely containing
// those letters. The final segment (the file name) participates like any
// other, so a fragment can also pin a specific file.
func pathHasSegments(path, fragment string) bool {
	want := splitSegments(fragment)
	if len(want) == 0 {
		return false
	}
	have := splitSegments(path)
	for i := 0; i+len(want) <= len(have); i++ {
		match := true
		for j, seg := range want {
			if have[i+j] != seg {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func splitSegments(p string) []string {
	var out []string
	for _, seg := range strings.Split(p, "/") {
		if seg != "" {
			out = append(out, seg)
		}
	}
	return out
}
