package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the short identifier used in diagnostics and suppression
	// comments ("lockcheck", "errdrop", ...).
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run inspects one package and reports findings through the pass.
	Run(pass *Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Pkg      *Package
	Fset     *token.FileSet
	analyzer string
	sink     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Runner applies a set of analyzers over loaded packages with suppression.
type Runner struct {
	Analyzers []Analyzer
	// SuppressPaths maps analyzer name (or "*" for all) to slash-separated
	// path fragments; a diagnostic whose file path contains a fragment is
	// dropped. This is the per-path suppression layer: e.g. generated code
	// or a package that intentionally trades an invariant away.
	SuppressPaths map[string][]string
}

// Run loads each import path and applies every analyzer, returning the
// surviving diagnostics sorted by position.
func (r *Runner) Run(l *Loader, paths []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, r.RunPackage(l, pkg)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// RunPackage applies every analyzer to one already-loaded package.
func (r *Runner) RunPackage(l *Loader, pkg *Package) []Diagnostic {
	ignores := collectIgnores(l.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range r.Analyzers {
		pass := &Pass{
			Pkg:      pkg,
			Fset:     l.Fset,
			analyzer: a.Name(),
			sink: func(d Diagnostic) {
				if !r.suppressed(d, ignores) {
					diags = append(diags, d)
				}
			},
		}
		a.Run(pass)
	}
	return diags
}

// ignoreKey identifies one line-level suppression.
type ignoreKey struct {
	file     string
	line     int
	analyzer string // "" means all analyzers
}

// collectIgnores scans comments for line-level suppressions. Two syntaxes:
//
//	//unidblint:ignore <analyzer> [reason]   (our own)
//	//nolint:errcheck                        (pre-existing idiom → errdrop)
//
// A suppression applies to diagnostics on its own line and the line below
// (so it can sit above the offending statement).
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey]bool {
	ignores := map[ignoreKey]bool{}
	add := func(pos token.Position, analyzer string) {
		ignores[ignoreKey{pos.Filename, pos.Line, analyzer}] = true
		ignores[ignoreKey{pos.Filename, pos.Line + 1, analyzer}] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "unidblint:ignore"); ok {
					fields := strings.Fields(rest)
					name := ""
					if len(fields) > 0 {
						name = fields[0]
					}
					add(fset.Position(c.Pos()), name)
				}
				if strings.HasPrefix(text, "nolint:errcheck") {
					add(fset.Position(c.Pos()), "errdrop")
				}
			}
		}
	}
	return ignores
}

func (r *Runner) suppressed(d Diagnostic, ignores map[ignoreKey]bool) bool {
	if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, ""}] {
		return true
	}
	slashed := filepath.ToSlash(d.Pos.Filename)
	for _, key := range []string{d.Analyzer, "*"} {
		for _, frag := range r.SuppressPaths[key] {
			if strings.Contains(slashed, frag) {
				return true
			}
		}
	}
	return false
}
