package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture type-checks testdata/<name> as a synthetic package, runs the
// analyzer through the full Runner (so suppression comments are exercised
// too), and compares diagnostics against `// want "regex"` annotations: each
// diagnostic must match a want on its line, and every want must fire.
func runFixture(t *testing.T, a Analyzer, name string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", name)
	pkg, err := l.LoadDir("fixture/"+name, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range pkg.SoftErrors {
		t.Errorf("fixture type error: %v", se)
	}
	wants := collectWants(t, l.Fset, pkg)
	runner := &Runner{Analyzers: []Analyzer{a}}
	diags := runner.RunPackage(l, pkg)

	matched := map[*want]bool{}
	for _, d := range diags {
		w := findWant(wants, d.Pos.Filename, d.Pos.Line)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic %q does not match want %q at %s:%d", d.Message, w.re, d.Pos.Filename, d.Pos.Line)
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("missing diagnostic: want %q at %s:%d", w.re, w.file, w.line)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRx = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("malformed want comment (use // want `regex`): %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}

func TestLockCheckFixtures(t *testing.T) {
	runFixture(t, LockCheck{}, "lockcheck")
}

func TestErrDropFixtures(t *testing.T) {
	runFixture(t, ErrDrop{}, "errdrop")
}

func TestExhaustiveFixtures(t *testing.T) {
	runFixture(t, Exhaustive{
		Interfaces: []TypeRef{{Pkg: "fixture/exhaustive", Name: "Node"}},
		Enums:      []TypeRef{{Pkg: "fixture/exhaustive", Name: "Color"}},
	}, "exhaustive")
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, Determinism{
		Scope: []ScopeRef{{Pkg: "fixture/determinism"}},
	}, "determinism")
}

func TestParallelMergeFixtures(t *testing.T) {
	runFixture(t, ParallelMerge{
		Scope: []ScopeRef{{Pkg: "fixture/parallelmerge", Files: []string{"merge.go"}}},
	}, "parallelmerge")
}

func TestSyncBarrierFixtures(t *testing.T) {
	runFixture(t, SyncBarrier{
		Scope:    []ScopeRef{{Pkg: "fixture/syncbarrier", Files: []string{"fixture.go"}}},
		Barriers: []string{"durableBarrier"},
		Acks:     []string{"finishWindow"},
	}, "syncbarrier")
}

func TestCowSafeFixtures(t *testing.T) {
	runFixture(t, CowSafe{
		NodeType:    "node",
		SharedField: "shared",
		MintFuncs:   []string{"mutable"},
		WriterFuncs: []string{"insert"},
	}, "cowsafe")
}

func TestCacheKeyFixtures(t *testing.T) {
	runFixture(t, CacheKey{
		Scope: []ScopeRef{{Pkg: "fixture/cachekey", Files: []string{"fixture.go", "rand.go"}}},
	}, "cachekey")
}

func TestTxnEndFixtures(t *testing.T) {
	runFixture(t, TxnEnd{
		BeginNames: []string{"Begin"},
		EndNames:   []string{"Commit", "Abort"},
	}, "txnend")
}
