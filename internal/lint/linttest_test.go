package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture type-checks testdata/<name> as a synthetic package, runs the
// analyzer through the full Runner (so suppression comments are exercised
// too), and compares diagnostics against `// want "regex"` annotations: each
// diagnostic must match a want on its line, and every want must fire.
func runFixture(t *testing.T, a Analyzer, name string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", name)
	pkg, err := l.LoadDir("fixture/"+name, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range pkg.SoftErrors {
		t.Errorf("fixture type error: %v", se)
	}
	wants := collectWants(t, l.Fset, pkg)
	runner := &Runner{Analyzers: []Analyzer{a}}
	diags := runner.RunPackage(l, pkg)

	matched := map[*want]bool{}
	for _, d := range diags {
		w := findWant(wants, d.Pos.Filename, d.Pos.Line)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic %q does not match want %q at %s:%d", d.Message, w.re, d.Pos.Filename, d.Pos.Line)
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("missing diagnostic: want %q at %s:%d", w.re, w.file, w.line)
		}
	}
}

// runRunnerFixture is the multi-package variant: it loads each named
// testdata subdirectory (in dependency order) as fixture/<name>, runs the
// fully configured Runner over the set — per-package analyzers, program
// analyzers, suppression — and matches `// want` annotations across all of
// them.
func runRunnerFixture(t *testing.T, runner *Runner, names ...string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	var wants []*want
	for _, name := range names {
		dir := filepath.Join("testdata", filepath.FromSlash(name))
		pkg, err := l.LoadDir("fixture/"+name, dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, se := range pkg.SoftErrors {
			t.Errorf("fixture type error: %v", se)
		}
		pkgs = append(pkgs, pkg)
		wants = append(wants, collectWants(t, l.Fset, pkg)...)
	}
	diags := runner.RunPackages(l, pkgs)

	matched := map[*want]bool{}
	for _, d := range diags {
		w := findWant(wants, d.Pos.Filename, d.Pos.Line)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic %q does not match want %q at %s:%d", d.Message, w.re, d.Pos.Filename, d.Pos.Line)
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("missing diagnostic: want %q at %s:%d", w.re, w.file, w.line)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRx = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("malformed want comment (use // want `regex`): %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}

func TestLockCheckFixtures(t *testing.T) {
	runFixture(t, LockCheck{}, "lockcheck")
}

func TestErrDropFixtures(t *testing.T) {
	runFixture(t, ErrDrop{}, "errdrop")
}

func TestExhaustiveFixtures(t *testing.T) {
	runFixture(t, Exhaustive{
		Interfaces: []TypeRef{{Pkg: "fixture/exhaustive", Name: "Node"}},
		Enums:      []TypeRef{{Pkg: "fixture/exhaustive", Name: "Color"}},
	}, "exhaustive")
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, Determinism{
		Scope: []ScopeRef{{Pkg: "fixture/determinism"}},
	}, "determinism")
}

func TestParallelMergeFixtures(t *testing.T) {
	runFixture(t, ParallelMerge{
		Scope: []ScopeRef{{Pkg: "fixture/parallelmerge", Files: []string{"merge.go"}}},
	}, "parallelmerge")
}

func TestSyncBarrierFixtures(t *testing.T) {
	runFixture(t, SyncBarrier{
		Scope:    []ScopeRef{{Pkg: "fixture/syncbarrier", Files: []string{"fixture.go"}}},
		Barriers: []string{"durableBarrier"},
		Acks:     []string{"finishWindow"},
	}, "syncbarrier")
}

func TestCowSafeFixtures(t *testing.T) {
	runFixture(t, CowSafe{
		NodeType:    "node",
		SharedField: "shared",
		MintFuncs:   []string{"mutable"},
		WriterFuncs: []string{"insert"},
	}, "cowsafe")
}

func TestCacheKeyFixtures(t *testing.T) {
	runFixture(t, CacheKey{
		Scope: []ScopeRef{{Pkg: "fixture/cachekey", Files: []string{"fixture.go", "rand.go"}}},
	}, "cachekey")
}

// TestSuppressPathSegments is the regression test for the fragment-matching
// fix: suppression fragments must match complete, slash-bounded path
// segments, so "core" suppresses internal/core but can no longer swallow
// diagnostics from colstore or docstore.
func TestSuppressPathSegments(t *testing.T) {
	cases := []struct {
		path, frag string
		want       bool
	}{
		{"internal/core/core.go", "core", true},
		{"internal/colstore/colstore.go", "core", false},
		{"internal/docstore/docstore.go", "core", false},
		{"/root/repo/examples/basic/main.go", "/examples/", true},
		{"/root/repo/examples/basic/main.go", "examples/basic", true},
		{"/root/repo/examples/basic/main.go", "basic/examples", false},
		{"internal/core/core.go", "core.go", true},
		{"internal/core/core.go", "ore", false},
		{"internal/core/core.go", "", false},
	}
	for _, c := range cases {
		if got := pathHasSegments(c.path, c.frag); got != c.want {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", c.path, c.frag, got, c.want)
		}
	}

	r := &Runner{SuppressPaths: map[string][]string{"*": {"core"}}}
	ignored := map[ignoreKey]bool{}
	hit := Diagnostic{Pos: token.Position{Filename: "/repo/internal/core/db.go", Line: 3}, Analyzer: "errdrop"}
	miss := Diagnostic{Pos: token.Position{Filename: "/repo/internal/colstore/col.go", Line: 3}, Analyzer: "errdrop"}
	if !r.suppressed(hit, ignored) {
		t.Error("fragment core should suppress internal/core diagnostics")
	}
	if r.suppressed(miss, ignored) {
		t.Error("fragment core must not suppress internal/colstore diagnostics")
	}
}

func TestLockOrderFixtures(t *testing.T) {
	runRunnerFixture(t, &Runner{
		ProgramAnalyzers: []ProgramAnalyzer{LockOrder{
			Order: []string{"fix.A", "fix.B", "fix.D", "fix.E"},
		}},
		LockClasses: LockClasses{Refs: []LockClassRef{
			{Pkg: "fixture/lockorder", Type: "A", Field: "mu", Class: "fix.A"},
			{Pkg: "fixture/lockorder", Type: "B", Field: "mu", Class: "fix.B"},
			{Pkg: "fixture/lockorder", Type: "D", Field: "mu", Class: "fix.D"},
			{Pkg: "fixture/lockorder", Type: "E", Field: "mu", Class: "fix.E"},
		}},
	}, "lockorder")
}

func TestSnapshotPureFixtures(t *testing.T) {
	runRunnerFixture(t, &Runner{
		ProgramAnalyzers: []ProgramAnalyzer{SnapshotPure{
			Roots: []FuncRef{
				{Pkg: "fixture/snapshotpure", Name: "Txn.Get"},
				{Pkg: "fixture/snapshotpure", Name: "Txn.Commit"},
				{Pkg: "fixture/snapshotpure", Name: "Txn.Abort"},
				{Pkg: "fixture/snapshotpure", Name: "Txn.finish"},
			},
			Forbidden: []string{"fix.commitMu", "fix.lockmgr.mu"},
			ForbiddenRecv: []TypeRef{
				{Pkg: "fixture/snapshotpure", Name: "lockMgr"},
			},
		}},
		LockClasses: LockClasses{Refs: []LockClassRef{
			{Pkg: "fixture/snapshotpure", Type: "Engine", Field: "mu", Class: "fix.mu"},
			{Pkg: "fixture/snapshotpure", Type: "Engine", Field: "commitMu", Class: "fix.commitMu"},
			{Pkg: "fixture/snapshotpure", Type: "lockMgr", Field: "mu", Class: "fix.lockmgr.mu"},
		}},
		GuardField: "snap",
	}, "snapshotpure")
}

func TestDeterminismTaintFixtures(t *testing.T) {
	runRunnerFixture(t, &Runner{
		Analyzers: []Analyzer{Determinism{
			Scope: []ScopeRef{{Pkg: "fixture/determtaint", Files: []string{"exec.go"}}},
		}},
	}, "determtaint")
}

func TestErrDropTaintFixtures(t *testing.T) {
	runRunnerFixture(t, &Runner{
		Analyzers: []Analyzer{ErrDrop{
			Packages: []string{"fixture/errdroptaint"},
		}},
	}, "errdroptaint/helper", "errdroptaint")
}

func TestTxnEndFixtures(t *testing.T) {
	runFixture(t, TxnEnd{
		BeginNames: []string{"Begin"},
		EndNames:   []string{"Commit", "Abort"},
	}, "txnend")
}
