package lint

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder derives the whole-program lock-acquisition graph from the
// interprocedural summaries and checks it against the one declared order:
// an edge A → B exists when some function acquires B while holding A, either
// directly or by calling (with A held) into a function that may acquire B
// transitively. Three things get reported:
//
//  1. a nesting edge touching a mutex that is not declared in the order
//     table — every lock that participates in nesting must be ranked;
//  2. an edge that contradicts the declared order (B ranked before A);
//  3. a cycle in the acquisition graph — the classic deadlock shape, which
//     can exist even when no single edge contradicts the declared order
//     (e.g. when undeclared locks are involved).
//
// Self-edges (re-acquiring a class already held) are excluded: the may-hold
// analysis unions branches, so A-held-acquire-A frequently means "two
// exclusive branches each lock A", which lockcheck's pairing analysis
// already polices more precisely.
type LockOrder struct {
	// Order is the canonical acquisition order, outermost lock first. Any
	// nesting edge must go strictly left-to-right in this list.
	Order []string
}

// Name implements ProgramAnalyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements ProgramAnalyzer.
func (LockOrder) Doc() string {
	return "every interprocedural lock-nesting edge follows the declared global acquisition order and the graph is acyclic"
}

// lockEdge is one nesting fact: to is acquired while from is held.
type lockEdge struct {
	from, to string
	pos      token.Pos // the acquire or call site creating the edge
	fn       string    // function containing pos
	viaCall  string    // non-empty: callee display name for held-across-call edges
}

// RunProgram implements ProgramAnalyzer.
func (lo LockOrder) RunProgram(prog *Program, pass *Pass) {
	edges := collectLockEdges(prog)

	// 1. Undeclared participants: report once per class, at its first edge.
	reported := map[string]bool{}
	for _, e := range edges {
		for _, class := range []string{e.from, e.to} {
			if classIndex(lo.Order, class) >= 0 || reported[class] {
				continue
			}
			reported[class] = true
			pass.Reportf(e.pos,
				"mutex %s participates in lock nesting (%s → %s in %s) but is not ranked in the declared lock order; add it to the order table in internal/lint/config.go",
				class, e.from, e.to, e.fn)
		}
	}

	// 2. Order contradictions between ranked classes.
	for _, e := range edges {
		fi, ti := classIndex(lo.Order, e.from), classIndex(lo.Order, e.to)
		if fi < 0 || ti < 0 || fi < ti {
			continue
		}
		if e.viaCall != "" {
			pass.Reportf(e.pos,
				"call to %s may acquire %s while %s is held: contradicts declared lock order (%s ranks before %s)",
				e.viaCall, e.to, e.from, e.to, e.from)
		} else {
			pass.Reportf(e.pos,
				"acquires %s while holding %s: contradicts declared lock order (%s ranks before %s)",
				e.to, e.from, e.to, e.from)
		}
	}

	// 3. Cycles, declared or not: any strongly connected component of the
	// class graph with more than one node is a potential deadlock.
	for _, scc := range lockSCCs(edges) {
		in := map[string]bool{}
		for _, c := range scc {
			in[c] = true
		}
		// Anchor the diagnostic at the first order-contradicting edge of the
		// cycle when one exists (that is where the fix goes); otherwise at
		// the last edge in collection order — the acquisition that closed
		// the cycle.
		var anchor *lockEdge
		for i := range edges {
			e := &edges[i]
			if !in[e.from] || !in[e.to] {
				continue
			}
			anchor = e
			fi, ti := classIndex(lo.Order, e.from), classIndex(lo.Order, e.to)
			if fi >= 0 && ti >= 0 && fi > ti {
				break
			}
		}
		if anchor == nil {
			continue
		}
		pass.Reportf(anchor.pos, "lock-order cycle %s: potential deadlock", strings.Join(scc, " → "))
	}
}

// collectLockEdges walks every function summary and materializes the nesting
// edges, deduplicated by (from, to) keeping the first (deterministic: the
// function list is position-sorted and sites are in syntactic order).
func collectLockEdges(prog *Program) []lockEdge {
	var edges []lockEdge
	seen := map[[2]string]bool{}
	add := func(e lockEdge) {
		if e.from == e.to {
			return
		}
		key := [2]string{e.from, e.to}
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, e)
	}
	for _, fi := range prog.funcList {
		for _, a := range fi.Acquires {
			for _, h := range a.held {
				add(lockEdge{from: h.class, to: a.class, pos: a.pos, fn: fi.Name()})
			}
		}
		for _, c := range fi.Calls {
			if len(c.held) == 0 {
				continue
			}
			callee := prog.Funcs[c.callee]
			if callee == nil {
				continue
			}
			for _, class := range callee.mayAcquireClasses() {
				for _, h := range c.held {
					add(lockEdge{from: h.class, to: class, pos: c.pos, fn: fi.Name(), viaCall: callee.Name()})
				}
			}
		}
	}
	return edges
}

// lockSCCs returns the strongly connected components of the edge graph with
// more than one member, each sorted alphabetically, components ordered by
// their first class name. (Self-edges are already excluded, so single-node
// components are never cyclic.)
func lockSCCs(edges []lockEdge) [][]string {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from] = true
		nodes[e.to] = true
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan's algorithm, iterative over the sorted node list.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				out = append(out, scc)
			}
		}
	}
	for _, n := range order {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
