package lint

import (
	"go/ast"
	"go/types"
)

// CowSafe guards the copy-on-write discipline of the versioned B+tree: a
// node reachable from more than one tree version (marked by its shared
// flag) must never be mutated in place — every writer path has to obtain a
// privately-owned node from the path-copy gate before touching it, or a
// snapshot taken yesterday starts seeing today's writes.
//
// The check is a provenance analysis per function. A write to a field of a
// node-typed value (assignment, op-assignment, ++/--, or copy into a node
// field's slice) is allowed only when
//
//   - the enclosing function is one of WriterFuncs — the low-level tree
//     mutators whose documented contract is "n must be mutable", enforced at
//     their call sites by this same analyzer, or
//   - the node being written is locally proven mutable: the written
//     expression's owner is a plain identifier assigned (directly or via
//     aliases) from a MintFuncs call (the copy-on-write gate), from a
//     &node{...} composite literal, or from new(node).
//
// Writes through anything other than a plain identifier (n.children[i].keys
// = ... reaches a child that mutable(n) did NOT make private) are always
// flagged outside WriterFuncs. Separately — and even inside WriterFuncs —
// the shared flag is monotonic: any Store on it with an argument other than
// the literal true is flagged, since un-sharing a node would re-expose it
// to in-place mutation while snapshots still reference it.
//
// Like every analyzer here this is a guard rail, not a proof: a slice
// header copied out of a node (ks := n.keys; ks[0] = …) escapes it. The
// fixture and the btree package itself keep node internals behind the
// helpers this analyzer watches.
type CowSafe struct {
	// Packages lists enforced package paths; empty enforces every package
	// (used by fixtures).
	Packages []string
	// NodeType is the name of the COW node type within the enforced
	// package; empty means "node".
	NodeType string
	// SharedField is the name of the monotonic shared flag field; empty
	// means "shared".
	SharedField string
	// MintFuncs are functions whose results are freshly-mutable nodes;
	// empty means {"mutable"}.
	MintFuncs []string
	// WriterFuncs are functions whose node parameters are mutable by
	// documented contract (their callers pass minted nodes).
	WriterFuncs []string
}

// Name implements Analyzer.
func (CowSafe) Name() string { return "cowsafe" }

// Doc implements Analyzer.
func (CowSafe) Doc() string {
	return "shared COW tree nodes must never be mutated in place; writers go through the path-copy gate"
}

// Run implements Analyzer.
func (cs CowSafe) Run(pass *Pass) {
	if len(cs.Packages) > 0 {
		found := false
		for _, p := range cs.Packages {
			if p == pass.Pkg.Path {
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
	nodeType := cs.NodeType
	if nodeType == "" {
		nodeType = "node"
	}
	sharedField := cs.SharedField
	if sharedField == "" {
		sharedField = "shared"
	}
	mints := cs.MintFuncs
	if len(mints) == 0 {
		mints = []string{"mutable"}
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			cs.checkFunc(pass, fn, nodeType, sharedField, mints)
		}
	}
}

// checkFunc applies both rules to one function body.
func (cs CowSafe) checkFunc(pass *Pass, fn *ast.FuncDecl, nodeType, sharedField string, mints []string) {
	exempt := inList(fn.Name.Name, cs.WriterFuncs) || inList(fn.Name.Name, mints)
	proven := cs.provenMutable(pass, fn, nodeType, mints)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			// Monotonic shared flag: <node>.shared.Store(x) with x != true.
			if recv, isStore := sharedStoreCall(pass, st, nodeType, sharedField); isStore {
				if id, ok := st.Args[0].(*ast.Ident); !ok || id.Name != "true" {
					pass.Reportf(st.Pos(),
						"%s.%s.Store with a non-true argument: the shared flag is monotonic — un-sharing would re-expose the node to in-place mutation under live snapshots", recv, sharedField)
				}
				return true
			}
			// copy(n.field, ...) mutates the node's backing array in place.
			if !exempt {
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
					cs.checkWrite(pass, st.Args[0], proven, nodeType, fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if exempt {
				return true
			}
			for _, lhs := range st.Lhs {
				cs.checkWrite(pass, lhs, proven, nodeType, fn.Name.Name)
			}
		case *ast.IncDecStmt:
			if exempt {
				return true
			}
			cs.checkWrite(pass, st.X, proven, nodeType, fn.Name.Name)
		}
		return true
	})
}

// checkWrite flags lhs when it stores into a node field whose owner is not
// locally proven mutable.
func (cs CowSafe) checkWrite(pass *Pass, lhs ast.Expr, proven map[types.Object]bool, nodeType, fnName string) {
	owner, field, isNodeWrite := nodeFieldWrite(pass, lhs, nodeType)
	if !isNodeWrite {
		return
	}
	if id, ok := owner.(*ast.Ident); ok {
		if obj := pass.Pkg.Info.ObjectOf(id); obj != nil && proven[obj] {
			return
		}
		pass.Reportf(lhs.Pos(),
			"in-place write to %s.%s in %s: %s is not proven mutable here — obtain it from the copy-on-write gate first", id.Name, field, fnName, id.Name)
		return
	}
	pass.Reportf(lhs.Pos(),
		"in-place write to field %s of a non-local node expression in %s: bind the node via the copy-on-write gate before mutating it", field, fnName)
}

// provenMutable computes the set of identifiers proven to reference a
// privately-owned node: assigned from a mint call, a &node{...} literal, or
// new(node), with alias propagation to a fixpoint.
func (cs CowSafe) provenMutable(pass *Pass, fn *ast.FuncDecl, nodeType string, mints []string) map[types.Object]bool {
	proven := map[types.Object]bool{}
	type alias struct{ dst, src types.Object }
	var aliases []alias
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Pkg.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CallExpr:
				if calleeName(rhs) != "" && inList(calleeName(rhs), mints) {
					proven[obj] = true
				} else if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "new" && len(rhs.Args) == 1 {
					if t, ok := pass.Pkg.Info.Types[rhs.Args[0]]; ok && isNodeType(t.Type, nodeType, pass.Pkg.Path) {
						proven[obj] = true
					}
				}
			case *ast.UnaryExpr:
				if lit, ok := rhs.X.(*ast.CompositeLit); ok {
					if t, ok := pass.Pkg.Info.Types[lit]; ok && isNodeType(t.Type, nodeType, pass.Pkg.Path) {
						proven[obj] = true
					}
				}
			case *ast.Ident:
				if src := pass.Pkg.Info.ObjectOf(rhs); src != nil {
					aliases = append(aliases, alias{obj, src})
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, a := range aliases {
			if proven[a.src] && !proven[a.dst] {
				proven[a.dst] = true
				changed = true
			}
		}
	}
	return proven
}

// nodeFieldWrite walks an assignable expression inward and reports whether
// it ultimately stores into a field of a node value, returning the owner
// expression (the node the field belongs to) and the field name.
func nodeFieldWrite(pass *Pass, lhs ast.Expr, nodeType string) (ast.Expr, string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if tv, ok := pass.Pkg.Info.Types[e.X]; ok && isNodeType(tv.Type, nodeType, pass.Pkg.Path) {
				return e.X, e.Sel.Name, true
			}
			lhs = e.X
		default:
			return nil, "", false
		}
	}
}

// sharedStoreCall matches <node expr>.<sharedField>.Store(x), returning a
// printable receiver description.
func sharedStoreCall(pass *Pass, call *ast.CallExpr, nodeType, sharedField string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != sharedField {
		return "", false
	}
	tv, ok := pass.Pkg.Info.Types[inner.X]
	if !ok || !isNodeType(tv.Type, nodeType, pass.Pkg.Path) {
		return "", false
	}
	if id, ok := inner.X.(*ast.Ident); ok {
		return id.Name, true
	}
	return "node", true
}

// isNodeType reports whether t (after pointer deref) is the named COW node
// type declared in the enforced package.
func isNodeType(t types.Type, nodeType, pkgPath string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == nodeType && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeName returns the bare name of a call's callee (f() or recv.f()).
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func inList(name string, list []string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}
