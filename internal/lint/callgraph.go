package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program half of the lint suite: where flow.go walks
// one function body at a time, the Program here ties every loaded package
// together into a call graph with per-function summaries, so analyzers can
// ask interprocedural questions — "which mutexes may this call acquire,
// transitively?", "can a snapshot read path ever reach the lock manager?" —
// that no per-function walker can answer. The graph is built once per Runner
// invocation and shared by every analyzer through Pass.Prog.
//
// Resolution is static and conservative: direct calls and method calls on
// concrete receivers resolve through go/types object identity (the loader
// caches packages, so a callee seen from two importers is one *types.Func);
// calls through interfaces, function values, and fields of func type do not
// resolve and simply contribute no edges. Function literals are analyzed
// inline at their definition point with the enclosing function's lock state —
// except literals launched with `go`, which start with an empty held set
// (a goroutine does not inherit its parent's locks).

// Program is the whole-program view: every analyzed package, a summary per
// declared function, and the lock-class configuration used to canonicalize
// mutex identities.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// Funcs maps a declared function/method object to its summary. Only
	// functions declared in the analyzed packages appear; stdlib callees
	// resolve to nil and contribute nothing.
	Funcs map[*types.Func]*FuncInfo
	Locks LockClasses

	// funcList holds the same summaries in deterministic (position) order —
	// every whole-program iteration must use it, never the map.
	funcList []*FuncInfo
}

// FuncInfo is one function's interprocedural summary.
type FuncInfo struct {
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Acquires lists every mutex Lock/RLock site with the lock classes held
	// at that point and the snapshot-guard context it sits in.
	Acquires []lockSite
	// Calls lists every statically resolved call site with held locks and
	// guard context. Callees outside the program resolve to no FuncInfo.
	Calls []callSite

	// DropsError reports a non-deferred call whose error result is discarded
	// (bare call or blank assign) somewhere in the body.
	DropsError bool
	DropPos    token.Pos
	// CallsTimeNow reports a direct time.Now() read in the body.
	CallsTimeNow bool
	TimeNowPos   token.Pos

	// mayAcquire is the transitive closure of lock classes this function may
	// acquire (directly or through any resolved callee), with a witness
	// position inside this function (the acquire or the call that leads
	// there). Filled by the fixed point in summary.go.
	mayAcquire map[string]token.Pos
}

// Name renders the function as "Type.Method" or "Func" for diagnostics and
// config references.
func (fi *FuncInfo) Name() string { return funcDisplayName(fi.Obj) }

func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// FuncRef names a function for configuration: Name is "Func" for a
// package-level function or "Type.Method" for a method (pointer and value
// receivers are not distinguished).
type FuncRef struct {
	Pkg  string
	Name string
}

// FuncNamed resolves a FuncRef against the program, or nil.
func (p *Program) FuncNamed(ref FuncRef) *FuncInfo {
	for _, fi := range p.funcList {
		if fi.Pkg.Path == ref.Pkg && fi.Name() == ref.Name {
			return fi
		}
	}
	return nil
}

// snapGuard is the snapshot-branch context of a site: whether control flow
// reached it under a proven "<x>.snap == nil" (locked path) or
// "<x>.snap != nil" (snapshot path) condition.
type snapGuard uint8

const (
	snapUnknown snapGuard = iota
	snapIsNil             // dominated by a snap == nil test: the 2PL path
	snapNonNil            // dominated by a snap != nil test: the MVCC path
)

// heldLock is one lock class held at a site, with its acquire position.
type heldLock struct {
	class string
	pos   token.Pos
}

// lockSite is one mutex acquisition.
type lockSite struct {
	class string
	pos   token.Pos
	held  []heldLock
	guard snapGuard
}

// callSite is one statically resolved call.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	held   []heldLock
	guard  snapGuard
}

// BuildProgram computes summaries for every function declared in pkgs.
// guardField names the struct field whose nil-ness separates the snapshot
// read path from the locked path ("snap" in this repository; "" disables
// guard tracking).
func BuildProgram(fset *token.FileSet, pkgs []*Package, locks LockClasses, guardField string) *Program {
	p := &Program{
		Fset:     fset,
		Packages: pkgs,
		Funcs:    map[*types.Func]*FuncInfo{},
		Locks:    locks,
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Pkg: pkg, Decl: fd, mayAcquire: map[string]token.Pos{}}
				w := &factWalker{pkg: pkg, fset: fset, locks: locks, guardField: guardField, fi: fi}
				w.walkStmts(fd.Body.List, newFactState())
				p.Funcs[obj] = fi
				p.funcList = append(p.funcList, fi)
			}
		}
	}
	sort.Slice(p.funcList, func(i, j int) bool {
		a, b := p.funcList[i], p.funcList[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	p.computeMayAcquire()
	return p
}

// factState is the walker's abstract state: the may-held lock set and the
// current snapshot-guard context.
type factState struct {
	held  map[string]token.Pos
	guard snapGuard
}

func newFactState() *factState {
	return &factState{held: map[string]token.Pos{}}
}

func (s *factState) clone() *factState {
	c := &factState{held: make(map[string]token.Pos, len(s.held)), guard: s.guard}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *factState) heldSnapshot() []heldLock {
	if len(s.held) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(s.held))
	for class, pos := range s.held {
		out = append(out, heldLock{class: class, pos: pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class < out[j].class })
	return out
}

// factWalker extracts one function's summary. It mirrors the control-flow
// shapes flow.go handles, but tracks a may-hold lock set forward (a deferred
// Unlock keeps the lock held for the rest of the body — the opposite reading
// from leak checking) and a snapshot-guard context refined by if conditions.
type factWalker struct {
	pkg        *Package
	fset       *token.FileSet
	locks      LockClasses
	guardField string
	fi         *FuncInfo
}

// walkStmts processes a statement list; the returned bool reports whether
// every path through it terminated (return/branch/panic).
func (w *factWalker) walkStmts(stmts []ast.Stmt, st *factState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *factWalker) walkStmt(s ast.Stmt, st *factState) bool {
	switch t := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.walkStmts(t.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(t.Stmt, st)
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			w.scanExpr(res, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		w.walkDefer(t, st)
		return false
	case *ast.GoStmt:
		// Arguments are evaluated now, in the current state; the body runs
		// on a fresh goroutine that holds none of our locks.
		for _, arg := range t.Call.Args {
			w.scanExpr(arg, st)
		}
		fresh := newFactState()
		fresh.guard = st.guard
		if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, fresh)
		} else {
			w.handleCall(t.Call, fresh)
		}
		return false
	case *ast.IfStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		w.scanExpr(t.Cond, st)
		thenGuard, elseGuard := w.condGuards(t.Cond)
		thenSt := st.clone()
		if thenGuard != snapUnknown {
			thenSt.guard = thenGuard
		}
		elseSt := st.clone()
		if elseGuard != snapUnknown {
			elseSt.guard = elseGuard
		}
		thenTerm := w.walkStmts(t.Body.List, thenSt)
		elseTerm := false
		if t.Else != nil {
			elseTerm = w.walkStmt(t.Else, elseSt)
		}
		term := w.merge(st, thenSt, thenTerm, elseSt, elseTerm)
		// A terminating branch leaves the opposite guard proven for the
		// remainder: `if t.snap != nil { return ... }` makes everything after
		// the if part of the locked (snap == nil) path, and vice versa.
		if thenTerm && !elseTerm && elseGuard != snapUnknown {
			st.guard = elseGuard
		}
		if elseTerm && !thenTerm && thenGuard != snapUnknown {
			st.guard = thenGuard
		}
		return term
	case *ast.ForStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		if t.Cond != nil {
			w.scanExpr(t.Cond, st)
		}
		bodySt := st.clone()
		w.walkStmts(t.Body.List, bodySt)
		if t.Post != nil {
			w.walkStmt(t.Post, bodySt)
		}
		return w.merge(st, bodySt, false, st.clone(), false)
	case *ast.RangeStmt:
		w.scanExpr(t.X, st)
		bodySt := st.clone()
		w.walkStmts(t.Body.List, bodySt)
		return w.merge(st, bodySt, false, st.clone(), false)
	case *ast.SwitchStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		if t.Tag != nil {
			w.scanExpr(t.Tag, st)
		}
		return w.walkCases(t.Body, st)
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		w.walkStmt(t.Assign, st)
		return w.walkCases(t.Body, st)
	case *ast.SelectStmt:
		if len(t.Body.List) == 0 {
			return true
		}
		return w.walkCases(t.Body, st)
	case *ast.ExprStmt:
		if isTerminalCall(t.X) {
			return true
		}
		w.checkDroppedError(t, st)
		w.scanExpr(t.X, st)
		return false
	case *ast.AssignStmt:
		w.checkBlankError(t)
		w.scanExpr(s, st)
		return false
	default:
		w.scanExpr(s, st)
		return false
	}
}

// walkCases clones the entry state per case and merges the survivors
// (may-hold union; guard refinement inside cases stays local to them).
func (w *factWalker) walkCases(body *ast.BlockStmt, st *factState) bool {
	var survivors []*factState
	allTerm := true
	hasDef := hasDefault(body)
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, st)
			}
			stmts = c.Body
		}
		caseSt := st.clone()
		if !w.walkStmts(stmts, caseSt) {
			allTerm = false
			survivors = append(survivors, caseSt)
		}
	}
	if !hasDef {
		allTerm = false
		survivors = append(survivors, st.clone())
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	held := map[string]token.Pos{}
	for _, s := range survivors {
		for k, v := range s.held {
			held[k] = v
		}
	}
	st.held = held
	return false
}

// merge folds two branch outcomes into st (may-hold union); returns true when
// both branches terminated.
func (w *factWalker) merge(st *factState, a *factState, aTerm bool, b *factState, bTerm bool) bool {
	if aTerm && bTerm {
		return true
	}
	held := map[string]token.Pos{}
	if !aTerm {
		for k, v := range a.held {
			held[k] = v
		}
	}
	if !bTerm {
		for k, v := range b.held {
			held[k] = v
		}
	}
	st.held = held
	return false
}

// walkDefer models a deferred call. A deferred Unlock does NOT release the
// lock for the remainder of the body — it runs at exit — so it is simply
// skipped. Deferred plain calls and literal bodies run with (approximately)
// the current state; their effects on the held set are discarded.
func (w *factWalker) walkDefer(d *ast.DeferStmt, st *factState) {
	for _, arg := range d.Call.Args {
		w.scanExpr(arg, st)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		w.walkStmts(lit.Body.List, st.clone())
		return
	}
	if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && isMutexMethod(&Pass{Pkg: w.pkg, Fset: w.fset}, sel) {
		switch sel.Sel.Name {
		case "Unlock", "RUnlock", "Lock", "RLock":
			return
		}
	}
	w.handleCall(d.Call, st.clone())
}

// scanExpr records calls, lock events, and time.Now reads inside an
// expression (or simple statement) subtree, in syntactic order. Function
// literals are walked inline against a copy of the current state.
func (w *factWalker) scanExpr(n ast.Node, st *factState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch t := nd.(type) {
		case *ast.FuncLit:
			w.walkStmts(t.Body.List, st.clone())
			return false
		case *ast.CallExpr:
			w.handleCall(t, st)
			// Descend: arguments may contain further calls. handleCall does
			// not recurse itself, so nothing is double-counted except that
			// the callee selector is revisited harmlessly.
			return true
		case *ast.SelectorExpr:
			if fn, ok := w.pkg.Info.Uses[t.Sel].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" && !w.fi.CallsTimeNow {
					w.fi.CallsTimeNow = true
					w.fi.TimeNowPos = t.Pos()
				}
			}
		}
		return true
	})
}

// handleCall classifies one call expression: a mutex Lock/Unlock updates the
// held set (and records an acquire site); anything else that statically
// resolves to a function object is recorded as a call site.
func (w *factWalker) handleCall(call *ast.CallExpr, st *factState) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if isMutexMethod(&Pass{Pkg: w.pkg, Fset: w.fset}, sel) {
				class, local := w.locks.classify(w.pkg, sel.X)
				if local || class == "" {
					return
				}
				switch sel.Sel.Name {
				case "Lock", "RLock":
					w.fi.Acquires = append(w.fi.Acquires, lockSite{
						class: class,
						pos:   call.Pos(),
						held:  st.heldSnapshot(),
						guard: st.guard,
					})
					st.held[class] = call.Pos()
				case "Unlock", "RUnlock":
					delete(st.held, class)
				}
				return
			}
		}
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = w.pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	w.fi.Calls = append(w.fi.Calls, callSite{
		callee: fn,
		pos:    call.Pos(),
		held:   st.heldSnapshot(),
		guard:  st.guard,
	})
}

// condGuards extracts the snapshot-guard implications of an if condition:
// what is proven inside the then-branch and inside the else-branch.
//
//	x.snap == nil     → then: isNil,   else: nonNil
//	x.snap != nil     → then: nonNil,  else: isNil
//	A && B            → then: guards of both; else: nothing provable
//	A || B            → then: nothing provable; else: guards of both
func (w *factWalker) condGuards(cond ast.Expr) (then, els snapGuard) {
	if w.guardField == "" {
		return snapUnknown, snapUnknown
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return snapUnknown, snapUnknown
	}
	switch bin.Op {
	case token.LAND:
		t1, _ := w.condGuards(bin.X)
		t2, _ := w.condGuards(bin.Y)
		return combineGuards(t1, t2), snapUnknown
	case token.LOR:
		_, e1 := w.condGuards(bin.X)
		_, e2 := w.condGuards(bin.Y)
		return snapUnknown, combineGuards(e1, e2)
	case token.EQL, token.NEQ:
		var other ast.Expr
		switch {
		case w.isNil(bin.Y):
			other = bin.X
		case w.isNil(bin.X):
			other = bin.Y
		default:
			return snapUnknown, snapUnknown
		}
		if !w.isGuardField(other) {
			return snapUnknown, snapUnknown
		}
		if bin.Op == token.EQL {
			return snapIsNil, snapNonNil
		}
		return snapNonNil, snapIsNil
	}
	return snapUnknown, snapUnknown
}

func combineGuards(a, b snapGuard) snapGuard {
	if a != snapUnknown {
		return a
	}
	return b
}

func (w *factWalker) isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := w.pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// isGuardField reports whether e is a selector (or ident) whose final name is
// the configured guard field ("t.snap", "txn.snap", ...).
func (w *factWalker) isGuardField(e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return t.Sel.Name == w.guardField
	case *ast.Ident:
		return t.Name == w.guardField
	}
	return false
}

// checkDroppedError marks the summary when a bare call's result set includes
// a discarded error (same shape errdrop reports intraprocedurally).
func (w *factWalker) checkDroppedError(stmt *ast.ExprStmt, st *factState) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok || w.fi.DropsError {
		return
	}
	pass := &Pass{Pkg: w.pkg, Fset: w.fset}
	if errResultIndex(pass, call) >= 0 {
		w.fi.DropsError = true
		w.fi.DropPos = call.Pos()
	}
}

// checkBlankError marks the summary when an assignment discards an error
// component into the blank identifier.
func (w *factWalker) checkBlankError(as *ast.AssignStmt) {
	if w.fi.DropsError {
		return
	}
	pass := &Pass{Pkg: w.pkg, Fset: w.fset}
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		idx := errResultIndex(pass, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return
		}
		if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			w.fi.DropsError = true
			w.fi.DropPos = as.Pos()
		}
		return
	}
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || errResultIndex(pass, call) < 0 {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			w.fi.DropsError = true
			w.fi.DropPos = as.Pos()
			return
		}
	}
}

// --- lock classes ---

// LockClassRef declares one mutex the engine cares about: the struct field
// (or package-level variable, Type == "") that holds it, and the canonical
// class name used in the order table and diagnostics.
type LockClassRef struct {
	Pkg   string // import path of the declaring package
	Type  string // struct type name; "" for a package-level mutex variable
	Field string // field or variable name
	Class string // canonical name ("engine.commitMu", "wal.log.mu", ...)
}

// LockClasses resolves mutex expressions to canonical class names.
type LockClasses struct {
	Refs []LockClassRef
}

// classify maps the receiver expression of a Lock/Unlock call ("x.mu" in
// "x.mu.Lock()") to a lock class. local reports a function-local mutex
// variable, which cannot participate in a global acquisition order and is
// excluded from analysis. Undeclared non-local mutexes get a synthesized
// descriptive name so lockorder can report them as missing from the table.
func (lc LockClasses) classify(pkg *Package, mutex ast.Expr) (class string, local bool) {
	switch e := ast.Unparen(mutex).(type) {
	case *ast.SelectorExpr:
		// Field selection: resolve the owning named struct type.
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lc.fieldClass(named.Obj().Pkg().Path(), named.Obj().Name(), sel.Obj().Name()), false
			}
			return "", true
		}
		// Qualified package-level variable: pkg.Mu.
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			if v.Parent() == v.Pkg().Scope() {
				return lc.fieldClass(v.Pkg().Path(), "", v.Name()), false
			}
		}
		return "", true
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", true
		}
		if v.Parent() == v.Pkg().Scope() {
			return lc.fieldClass(v.Pkg().Path(), "", v.Name()), false
		}
		return "", true // function-local mutex
	}
	return "", true
}

func (lc LockClasses) fieldClass(pkgPath, typeName, field string) string {
	for _, ref := range lc.Refs {
		if ref.Pkg == pkgPath && ref.Type == typeName && ref.Field == field {
			return ref.Class
		}
	}
	short := pkgPath
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if typeName == "" {
		return short + "." + field
	}
	return short + "." + typeName + "." + field
}

// ClassIndex returns the position of class in the declared order, or -1.
func classIndex(order []string, class string) int {
	for i, c := range order {
		if c == class {
			return i
		}
	}
	return -1
}
