package lint

import (
	"testing"
)

// loadRepoProgram loads the module's engine-side packages and builds the
// whole-program summary view the default runner would see.
func loadRepoProgram(t *testing.T, paths ...string) *Program {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return BuildProgram(l.Fset, pkgs, DefaultLockClasses(), "snap")
}

// TestDefaultSnapshotRootsResolve pins the snapshotpure configuration to the
// real engine: every declared root must resolve to a declared function, so a
// rename can never silently turn the analyzer into a no-op.
func TestDefaultSnapshotRootsResolve(t *testing.T) {
	prog := loadRepoProgram(t, "repro/internal/engine")
	for _, ref := range DefaultSnapshotRoots() {
		if prog.FuncNamed(ref) == nil {
			t.Errorf("snapshotpure root %s.%s does not resolve to any declared function", ref.Pkg, ref.Name)
		}
	}
}

// TestRepoLockEdges pins the summary engine to the real code: the documented
// nesting facts (checkpoint holds commitMu while cutting the WAL; commit
// publication holds commitMu across the tree apply under engine.mu) must
// show up as interprocedural edges, so an analyzer that finds nothing is
// demonstrably looking at a real graph rather than an empty one.
func TestRepoLockEdges(t *testing.T) {
	prog := loadRepoProgram(t, "repro/internal/engine", "repro/internal/wal")
	edges := collectLockEdges(prog)
	if len(edges) == 0 {
		t.Fatal("no lock-nesting edges found in engine+wal: summary extraction is broken")
	}
	want := [][2]string{
		{"engine.commitMu", "engine.mu"},     // Txn.Commit applies under e.mu with commitMu held
		{"engine.commitMu", "wal.log.mu"},    // checkpoint cut / commit append under commitMu
		{"engine.cpMu", "engine.commitMu"},   // Checkpoint serializes the cut
		{"engine.commitMu", "wal.commit.mu"}, // group-commit enqueue during publication
	}
	have := map[[2]string]bool{}
	for _, e := range edges {
		have[[2]string{e.from, e.to}] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("expected lock-nesting edge %s -> %s not found; edges: %v", w[0], w[1], edgeList(edges))
		}
	}
	// And the declared order must admit every edge between ranked classes.
	order := DefaultLockOrder()
	for _, e := range edges {
		fi, ti := classIndex(order, e.from), classIndex(order, e.to)
		if fi >= 0 && ti >= 0 && fi >= ti {
			t.Errorf("edge %s -> %s contradicts DefaultLockOrder", e.from, e.to)
		}
	}
}

// TestRepoShardLockEdges pins the sharding layer's place in the lock order:
// the router's cut barrier is held (shared) across phase two of a
// cross-shard commit, which drives each participant's CommitPrepared through
// the engine's commit path, and held exclusively while Cut snapshots every
// shard. Those nestings must surface as interprocedural edges, and every
// ranked edge the shard package introduces must go strictly downward in
// DefaultLockOrder — i.e. shard.cutMu stays outermost.
func TestRepoShardLockEdges(t *testing.T) {
	prog := loadRepoProgram(t, "repro/internal/shard", "repro/internal/engine", "repro/internal/wal")
	edges := collectLockEdges(prog)
	want := [][2]string{
		{"shard.cutMu", "engine.commitMu"},   // CommitPrepared publishes under commitMu
		{"shard.cutMu", "engine.mu"},         // prepared batch applies to the tree
		{"shard.cutMu", "wal.log.mu"},        // decision/commit markers hit the shard WALs
		{"shard.cutMu", "engine.lockmgr.mu"}, // router releases 2PL locks after apply
	}
	have := map[[2]string]bool{}
	for _, e := range edges {
		have[[2]string{e.from, e.to}] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("expected lock-nesting edge %s -> %s not found; edges: %v", w[0], w[1], edgeList(edges))
		}
	}
	order := DefaultLockOrder()
	for _, e := range edges {
		fi, ti := classIndex(order, e.from), classIndex(order, e.to)
		if fi >= 0 && ti >= 0 && fi >= ti {
			t.Errorf("edge %s -> %s contradicts DefaultLockOrder", e.from, e.to)
		}
	}
}

// TestSnapshotPureTraversesRealEngine is the negative control for the guard
// pruning: engine.mu IS legitimately acquired on the snapshot path (the O(1)
// root-pointer cut in BeginSnapshot), so forbidding it must produce
// diagnostics. If this fails, the BFS is pruning everything and the clean
// run of the real configuration proves nothing.
func TestSnapshotPureTraversesRealEngine(t *testing.T) {
	prog := loadRepoProgram(t, "repro/internal/engine")
	var got []Diagnostic
	pass := &Pass{
		Fset:     prog.Fset,
		Prog:     prog,
		analyzer: "snapshotpure",
		sink:     func(d Diagnostic) { got = append(got, d) },
	}
	SnapshotPure{
		Roots:     DefaultSnapshotRoots(),
		Forbidden: []string{"engine.mu"},
	}.RunProgram(prog, pass)
	if len(got) == 0 {
		t.Fatal("forbidding engine.mu on the snapshot path reported nothing: BFS or guard pruning is broken")
	}
}

func edgeList(edges []lockEdge) []string {
	var out []string
	for _, e := range edges {
		out = append(out, e.from+"->"+e.to)
	}
	return out
}

// TestRepoCSRCacheLockLeaf pins the CSR cache mutex's place in the lock
// order: it is a pure leaf. Cache.Get acquires it for map operations only
// and releases it before Build scans any keyspace, so no nesting edge may
// ever leave csr.cache.mu — a Build (or any engine call) under the mutex
// would serialize every graph's cache hit behind one graph's cold build and
// drag engine-side lock classes under a read-side leaf.
func TestRepoCSRCacheLockLeaf(t *testing.T) {
	prog := loadRepoProgram(t, "repro/internal/csr", "repro/internal/engine", "repro/internal/wal")
	// The class must actually resolve to acquisition sites — a renamed
	// field would silently turn this test (and lockorder) into a no-op.
	sites := 0
	for _, fi := range prog.funcList {
		for _, a := range fi.Acquires {
			if a.class == "csr.cache.mu" {
				sites++
			}
		}
	}
	if sites == 0 {
		t.Fatal("no acquisition sites of csr.cache.mu found: LockClasses row does not resolve")
	}
	edges := collectLockEdges(prog)
	for _, e := range edges {
		if e.from == "csr.cache.mu" {
			t.Errorf("csr.cache.mu is held across an acquisition of %s in %s: the CSR cache mutex must stay a leaf", e.to, e.fn)
		}
	}
	// And every ranked edge the csr package introduces must respect the
	// canonical order.
	order := DefaultLockOrder()
	if classIndex(order, "csr.cache.mu") < 0 {
		t.Fatal("csr.cache.mu is not ranked in DefaultLockOrder")
	}
	for _, e := range edges {
		fi, ti := classIndex(order, e.from), classIndex(order, e.to)
		if fi >= 0 && ti >= 0 && fi >= ti {
			t.Errorf("edge %s -> %s contradicts DefaultLockOrder", e.from, e.to)
		}
	}
}
