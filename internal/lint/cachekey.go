package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// CacheKey guards the determinism of result-cache keys and read-sets: a
// cache key must be a pure function of (dialect, query text, options, bound
// parameters) and a read-set a pure function of the compiled pipeline, or
// two identical queries stop sharing an entry — a silent hit-rate bug that
// no correctness test catches, because every served result is still valid.
// In the configured scope it forbids:
//
//	range over a map     — Go randomizes iteration order, so any map range
//	                       in a key/read-set path risks order-dependent
//	                       output; collect-then-sort exceptions must carry
//	                       //unidblint:ignore cachekey with a reason
//	time.Now(...)        — a clock read makes the key or validity decision
//	                       time-dependent; callers pass time.Time in so the
//	                       decision point stays testable and pure
//	import "math/rand"   — random state has no business near a cache key
//
// Unlike determinism's narrower map-range-into-append check, map ranges are
// banned outright here (as in parallel-merge): key construction is ordered
// by definition.
type CacheKey struct {
	// Scope lists (package path, file basenames) to enforce in; an empty
	// file list enforces the whole package.
	Scope []ScopeRef
}

// Name implements Analyzer.
func (CacheKey) Name() string { return "cachekey" }

// Doc implements Analyzer.
func (CacheKey) Doc() string {
	return "cache-key and read-set paths must be pure: no map ranges, time.Now, or math/rand"
}

// Run implements Analyzer.
func (ck CacheKey) Run(pass *Pass) {
	var files []string
	found := false
	for _, ref := range ck.Scope {
		if ref.Pkg == pass.Pkg.Path {
			found, files = true, ref.Files
			break
		}
	}
	if !found {
		return
	}
	inScope := func(f *ast.File) bool {
		if len(files) == 0 {
			return true
		}
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		for _, want := range files {
			if base == want {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Pkg.Files {
		if !inScope(file) {
			continue
		}
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(p == "math/rand" || p == "math/rand/v2") {
				pass.Reportf(imp.Pos(), "import of %s in a cache-key path", p)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if obj, ok := pass.Pkg.Info.Uses[t.Sel].(*types.Func); ok {
					if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now" {
						pass.Reportf(t.Pos(), "time.Now in a cache-key path: pass the instant in from the caller")
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.Pkg.Info.Types[t.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pass.Reportf(t.Pos(),
					"range over a map in a cache-key path: iteration order is nondeterministic; collect and sort the keys")
			}
			return true
		})
	}
}
