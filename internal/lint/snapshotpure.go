package lint

import (
	"go/types"
	"strings"
)

// SnapshotPure proves, interprocedurally, that the snapshot read path is
// lock-free: nothing reachable from the declared root functions may call
// into the lock manager or acquire a write-side mutex. This turns the COW
// snapshot design's "zero lock-manager traffic for readers" claim from a
// benchmark observation into a machine-checked invariant.
//
// The engine's transaction methods serve both pathways — a locked 2PL
// transaction and a read-only snapshot transaction — and branch on whether
// the snapshot field is nil. The summary walker records that guard per call
// and acquire site, so reachability here prunes everything dominated by a
// proven `snap == nil` test: only code that can execute for a snapshot
// transaction is traversed.
type SnapshotPure struct {
	// Roots are the entry points of the snapshot read path.
	Roots []FuncRef
	// Forbidden lists lock classes that must be unreachable (write-side
	// mutexes: the commit barrier, the WAL, the lock manager's own mutex).
	Forbidden []string
	// ForbiddenRecv lists types whose methods must never be called at all
	// on the read path (the lock manager).
	ForbiddenRecv []TypeRef
}

// Name implements ProgramAnalyzer.
func (SnapshotPure) Name() string { return "snapshotpure" }

// Doc implements ProgramAnalyzer.
func (SnapshotPure) Doc() string {
	return "nothing reachable from the snapshot read roots calls the lock manager or acquires a write-side mutex"
}

// RunProgram implements ProgramAnalyzer.
func (sp SnapshotPure) RunProgram(prog *Program, pass *Pass) {
	forbidden := map[string]bool{}
	for _, c := range sp.Forbidden {
		forbidden[c] = true
	}

	var queue []*FuncInfo
	parent := map[*FuncInfo]*FuncInfo{}
	seen := map[*FuncInfo]bool{}
	for _, ref := range sp.Roots {
		if fi := prog.FuncNamed(ref); fi != nil && !seen[fi] {
			seen[fi] = true
			queue = append(queue, fi)
		}
	}

	pathTo := func(fi *FuncInfo) string {
		var names []string
		for f := fi; f != nil; f = parent[f] {
			names = append(names, f.Name())
		}
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
		return strings.Join(names, " → ")
	}

	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, a := range fi.Acquires {
			if a.guard == snapIsNil {
				continue // provably on the locked (non-snapshot) path
			}
			if forbidden[a.class] {
				pass.Reportf(a.pos,
					"snapshot read path acquires write-side mutex %s (reached via %s)",
					a.class, pathTo(fi))
			}
		}
		for _, c := range fi.Calls {
			if c.guard == snapIsNil {
				continue
			}
			if tr, ok := sp.forbiddenMethod(c.callee); ok {
				pass.Reportf(c.pos,
					"snapshot read path calls lock-manager method %s.%s (reached via %s)",
					tr.Name, c.callee.Name(), pathTo(fi))
				continue // do not traverse into the lock manager
			}
			callee := prog.Funcs[c.callee]
			if callee == nil || seen[callee] {
				continue
			}
			seen[callee] = true
			parent[callee] = fi
			queue = append(queue, callee)
		}
	}
}

// forbiddenMethod reports whether fn is a method declared on one of the
// forbidden receiver types.
func (sp SnapshotPure) forbiddenMethod(fn *types.Func) (TypeRef, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return TypeRef{}, false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return TypeRef{}, false
	}
	for _, tr := range sp.ForbiddenRecv {
		if named.Obj().Pkg().Path() == tr.Pkg && named.Obj().Name() == tr.Name {
			return tr, true
		}
	}
	return TypeRef{}, false
}
