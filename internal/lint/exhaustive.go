package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TypeRef names a type by defining package path and type name.
type TypeRef struct {
	Pkg  string
	Name string
}

// Exhaustive enforces that switches over closed engine vocabularies cover
// every registered kind:
//
//   - type switches over a configured interface (the query AST's Expr and
//     Clause) must list every concrete implementation declared in the
//     interface's defining package;
//   - value switches over a configured enum type (mmvalue.Kind, wal.Op,
//     query.SourceKind) must list every declared constant of that type.
//
// A `default:` clause exempts a switch: it is an explicit statement about
// unknown kinds, which is the opposite of a half-wired one. Without it, a
// newly registered AST node or value kind fails the lint until every
// dispatch site handles it.
type Exhaustive struct {
	Interfaces []TypeRef
	Enums      []TypeRef
}

// Name implements Analyzer.
func (Exhaustive) Name() string { return "exhaustive" }

// Doc implements Analyzer.
func (Exhaustive) Doc() string {
	return "switches over AST-node interfaces and value-kind enums cover every registered kind (or carry a default)"
}

// Run implements Analyzer.
func (ex Exhaustive) Run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.TypeSwitchStmt:
				ex.checkTypeSwitch(pass, t)
			case *ast.SwitchStmt:
				ex.checkEnumSwitch(pass, t)
			}
			return true
		})
	}
}

func (ex Exhaustive) matches(t types.Type, refs []TypeRef) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	for _, ref := range refs {
		if obj.Pkg().Path() == ref.Pkg && obj.Name() == ref.Name {
			return named, true
		}
	}
	return nil, false
}

func (ex Exhaustive) checkTypeSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	tag := typeSwitchTag(sw)
	if tag == nil {
		return
	}
	tv, ok := pass.Pkg.Info.Types[tag]
	if !ok {
		return
	}
	named, ok := ex.matches(tv.Type, ex.Interfaces)
	if !ok {
		return
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return
	}
	if switchHasDefault(sw.Body) {
		return
	}
	// Required: every concrete type in the defining package implementing
	// the interface.
	defScope := named.Obj().Pkg().Scope()
	required := map[string]bool{}
	for _, name := range defScope.Names() {
		tn, ok := defScope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		if types.Implements(T, iface) || types.Implements(types.NewPointer(T), iface) {
			required[tn.Name()] = true
		}
	}
	// Covered: every case type (pointers dereferenced).
	for _, cl := range sw.Body.List {
		c := cl.(*ast.CaseClause)
		for _, te := range c.List {
			ctv, ok := pass.Pkg.Info.Types[te]
			if !ok {
				continue
			}
			T := ctv.Type
			if ptr, isPtr := T.(*types.Pointer); isPtr {
				T = ptr.Elem()
			}
			if cn, isNamed := T.(*types.Named); isNamed {
				delete(required, cn.Obj().Name())
			}
		}
	}
	if len(required) > 0 {
		pass.Reportf(sw.Pos(), "type switch over %s.%s is missing cases: %s (add them or a default)",
			named.Obj().Pkg().Name(), named.Obj().Name(), sortedKeys(required))
	}
}

func (ex Exhaustive) checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Pkg.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := ex.matches(tv.Type, ex.Enums)
	if !ok {
		return
	}
	if switchHasDefault(sw.Body) {
		return
	}
	// Required: every declared constant of the enum type, grouped by value
	// so aliases count as one.
	defScope := named.Obj().Pkg().Scope()
	required := map[string]string{} // exact value -> first name
	for _, name := range defScope.Names() {
		cn, ok := defScope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cn.Type(), named) {
			continue
		}
		val := cn.Val().ExactString()
		if _, have := required[val]; !have {
			required[val] = cn.Name()
		}
	}
	for _, cl := range sw.Body.List {
		c := cl.(*ast.CaseClause)
		for _, ce := range c.List {
			ctv, ok := pass.Pkg.Info.Types[ce]
			if !ok || ctv.Value == nil {
				continue
			}
			delete(required, ctv.Value.ExactString())
		}
	}
	if len(required) > 0 {
		missing := map[string]bool{}
		for _, name := range required {
			missing[name] = true
		}
		pass.Reportf(sw.Pos(), "switch over %s.%s is missing cases: %s (add them or a default)",
			named.Obj().Pkg().Name(), named.Obj().Name(), sortedKeys(missing))
	}
}

// typeSwitchTag extracts the interface-typed operand x of `switch v := x.(type)`.
func typeSwitchTag(sw *ast.TypeSwitchStmt) ast.Expr {
	switch a := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	}
	return nil
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
