package lint

import (
	"go/ast"
	"go/types"
)

// LockCheck verifies that every Lock()/RLock() taken on a sync.Mutex or
// sync.RWMutex (named field or variable) is released on all return paths of
// the acquiring function — by a defer or an explicit Unlock()/RUnlock() on
// every path. The engine's whole consistency story rests on strict lock
// pairing, so a single branch that returns while holding e.mu deadlocks
// every model at once.
type LockCheck struct{}

// Name implements Analyzer.
func (LockCheck) Name() string { return "lockcheck" }

// Doc implements Analyzer.
func (LockCheck) Doc() string {
	return "every mutex Lock/RLock is released on all return paths of the acquiring function"
}

// Run implements Analyzer.
func (lc LockCheck) Run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			lc.checkFunc(pass, body)
			return true // descend: nested literals are checked independently
		})
	}
}

func (lc LockCheck) checkFunc(pass *Pass, body *ast.BlockStmt) {
	events := func(n ast.Node) []flowEvent {
		return lockEvents(pass, n)
	}
	for _, leak := range runFlow(body, events, nil) {
		pass.Reportf(leak.AcquirePos,
			"%s is locked here but not released on all paths (may leak at exit on line %d)",
			leak.Key, pass.Fset.Position(leak.ExitPos).Line)
	}
}

// lockEvents extracts mutex acquire/release events from a subtree, skipping
// nested function literals (they run on their own schedule).
func lockEvents(pass *Pass, root ast.Node) []flowEvent {
	var out []flowEvent
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind flowKind
		var class string
		switch sel.Sel.Name {
		case "Lock":
			kind, class = flowAcquire, "W"
		case "Unlock":
			kind, class = flowRelease, "W"
		case "RLock":
			kind, class = flowAcquire, "R"
		case "RUnlock":
			kind, class = flowRelease, "R"
		default:
			return true
		}
		if !isMutexMethod(pass, sel) {
			return true
		}
		name := exprText(pass.Fset, sel.X)
		if name == "" {
			return true
		}
		key := name
		if class == "R" {
			key = name + " (read)"
		}
		out = append(out, flowEvent{key: key, kind: kind, pos: call.Pos()})
		return true
	})
	return out
}

// isMutexMethod reports whether sel is a method selection whose receiver is
// sync.Mutex or sync.RWMutex (including promoted/embedded fields).
func isMutexMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	if ok && s.Kind() == types.MethodVal {
		obj := s.Obj()
		if fn, isFn := obj.(*types.Func); isFn {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return isSyncMutexType(recv.Type())
			}
		}
		return false
	}
	// Package-level qualified call would land here; mutexes never do.
	if tv, ok := pass.Pkg.Info.Types[sel.X]; ok {
		return isSyncMutexType(tv.Type)
	}
	return false
}

func isSyncMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
