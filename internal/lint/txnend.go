package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TxnEnd verifies the transaction lifecycle in the configured packages:
// every value produced by an `engine.Begin`-style call either reaches a
// Commit or Abort on all paths of the function that created it, or visibly
// escapes (is returned, stored, or handed to another function — at which
// point responsibility transfers). A transaction that silently falls out of
// scope holds its 2PL locks forever and wedges every data model.
type TxnEnd struct {
	// Packages limits enforcement; empty means all.
	Packages []string
	// BeginNames are callee names that start a transaction ("Begin").
	BeginNames []string
	// EndNames are methods that finish one ("Commit", "Abort").
	EndNames []string
}

// Name implements Analyzer.
func (TxnEnd) Name() string { return "txnend" }

// Doc implements Analyzer.
func (TxnEnd) Doc() string {
	return "every Begin-style transaction reaches Commit or Abort on all paths (or escapes visibly)"
}

// Run implements Analyzer.
func (te TxnEnd) Run(pass *Pass) {
	if len(te.Packages) > 0 {
		ok := false
		for _, p := range te.Packages {
			if pass.Pkg.Path == p {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			te.checkFunc(pass, body)
			return true
		})
	}
}

func (te TxnEnd) checkFunc(pass *Pass, body *ast.BlockStmt) {
	tracked, errPair := te.findTracked(pass, body)
	if len(tracked) == 0 {
		return
	}
	keys := map[types.Object]string{}
	for obj := range tracked {
		keys[obj] = fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
	}
	events := func(n ast.Node) []flowEvent {
		var out []flowEvent
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			switch t := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range t.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Pkg.Info.Defs[id]
					if obj == nil {
						obj = pass.Pkg.Info.Uses[id]
					}
					if obj != nil && tracked[obj] && te.isBeginAssign(pass, t) {
						out = append(out, flowEvent{key: keys[obj], kind: flowAcquire, pos: id.Pos()})
					}
				}
			case *ast.CallExpr:
				sel, ok := t.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Pkg.Info.Uses[id]
				if obj == nil || !tracked[obj] {
					return true
				}
				for _, end := range te.EndNames {
					if sel.Sel.Name == end {
						out = append(out, flowEvent{key: keys[obj], kind: flowRelease, pos: t.Pos()})
					}
				}
			}
			return true
		})
		return out
	}
	// branch models the two failed-Begin checks: `if err != nil` (with err
	// from `t, err := Begin()`) and `if t == nil`. On the failure arm the
	// transaction was never created, so it owes no Commit/Abort.
	branch := func(cond ast.Expr, negated bool) []flowEvent {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return nil
		}
		var side ast.Expr
		if isNilIdent(pass, bin.X) {
			side = bin.Y
		} else if isNilIdent(pass, bin.Y) {
			side = bin.X
		} else {
			return nil
		}
		id, ok := ast.Unparen(side).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return nil
		}
		var txnObj types.Object
		var failOnNonNil bool // failure arm is where the compared value is non-nil
		if paired, ok := errPair[obj]; ok {
			txnObj, failOnNonNil = paired, true // err != nil → Begin failed
		} else if tracked[obj] {
			txnObj, failOnNonNil = obj, false // t == nil → Begin failed
		} else {
			return nil
		}
		if !tracked[txnObj] {
			return nil
		}
		// (op == NEQ) != negated means this arm sees the value non-nil.
		armNonNil := (bin.Op == token.NEQ) != negated
		if armNonNil != failOnNonNil {
			return nil
		}
		return []flowEvent{{key: keys[txnObj], kind: flowRelease, pos: cond.Pos()}}
	}
	objName := map[string]string{}
	for obj, k := range keys {
		objName[k] = obj.Name()
	}
	for _, leak := range runFlow(body, events, branch) {
		pass.Reportf(leak.AcquirePos,
			"transaction %s may reach the exit on line %d without Commit or Abort",
			objName[leak.Key], pass.Fset.Position(leak.ExitPos).Line)
	}
}

// findTracked locates Begin-style assignments whose result variable never
// escapes the function; those are the ones this function must finish. The
// second result pairs the error variable of `t, err := Begin()` with its
// transaction object, for the err-check branch refinement.
func (te TxnEnd) findTracked(pass *Pass, body *ast.BlockStmt) (map[types.Object]bool, map[types.Object]types.Object) {
	candidates := map[types.Object]bool{}
	errPair := map[types.Object]types.Object{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !te.isBeginAssign(pass, as) {
			return true
		}
		// The transaction is the first result.
		if len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "transaction from %s is discarded with the blank identifier", callName(pass, as.Rhs[0].(*ast.CallExpr)))
			return true
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		if obj != nil {
			candidates[obj] = true
			if len(as.Lhs) > 1 {
				if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
					errObj := pass.Pkg.Info.Defs[errID]
					if errObj == nil {
						errObj = pass.Pkg.Info.Uses[errID]
					}
					if errObj != nil {
						errPair[errObj] = obj
					}
				}
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return nil, nil
	}
	// Escape analysis: drop any candidate used outside `txn.Method(...)`
	// receiver position or its own Begin assignment.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[id]
			}
			if obj != nil && candidates[obj] && !te.benignUse(pass, id, stack) {
				delete(candidates, obj)
			}
		}
		stack = append(stack, n)
		return true
	})
	return candidates, errPair
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	return obj != nil && obj == types.Universe.Lookup("nil")
}

// benignUse reports whether the identifier use keeps the transaction local:
// the defining Begin assignment, a method call receiver (t.Get, t.Commit),
// or a nil-comparison.
func (te TxnEnd) benignUse(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == id // receiver of a method/field access
	case *ast.AssignStmt:
		// LHS of its own Begin assignment.
		if te.isBeginAssign(pass, p) {
			for _, lhs := range p.Lhs {
				if lhs == id {
					return true
				}
			}
		}
		return false
	case *ast.BinaryExpr:
		// t == nil / t != nil checks.
		if p.Op == token.EQL || p.Op == token.NEQ {
			return true
		}
		return false
	default:
		return false
	}
}

// isBeginAssign reports whether as assigns the result of a Begin-style call:
// a callee with a configured name whose first result type has every EndNames
// method.
func (te TxnEnd) isBeginAssign(pass *Pass, as *ast.AssignStmt) bool {
	if len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	var calleeName string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeName = fun.Name
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	default:
		return false
	}
	match := false
	for _, n := range te.BeginNames {
		if calleeName == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	var first types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		first = t.At(0).Type()
	default:
		first = t
	}
	for _, end := range te.EndNames {
		obj, _, _ := types.LookupFieldOrMethod(first, true, pass.Pkg.Types, end)
		if _, isFn := obj.(*types.Func); !isFn {
			return false
		}
	}
	return true
}
