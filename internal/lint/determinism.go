package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// Determinism guards the serial≡parallel byte-identical contract of the
// query executor: result merge paths must not observe wall-clock time,
// random state, or Go's randomized map iteration order. In the configured
// scope it forbids:
//
//	time.Now(...)                    — wall-clock reads
//	import "math/rand" / rand/v2     — random state
//	for k := range m { s = append(s, ...) }
//	                                 — map iteration order leaking into an
//	                                   ordered slice; sort the keys first
type Determinism struct {
	// Scope lists (package path, optional file basenames) to enforce in;
	// empty basenames means the whole package.
	Scope []ScopeRef
}

// ScopeRef selects files of a package.
type ScopeRef struct {
	Pkg   string
	Files []string
}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (Determinism) Doc() string {
	return "no time.Now, math/rand, or map-range-into-append in ordered executor paths"
}

// Run implements Analyzer.
func (dt Determinism) Run(pass *Pass) {
	var files []string
	found := false
	for _, ref := range dt.Scope {
		if ref.Pkg == pass.Pkg.Path {
			found, files = true, ref.Files
			break
		}
	}
	if !found {
		return
	}
	inScope := func(f *ast.File) bool {
		if len(files) == 0 {
			return true
		}
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		for _, want := range files {
			if base == want {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Pkg.Files {
		if !inScope(file) {
			continue
		}
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(p == "math/rand" || p == "math/rand/v2") {
				pass.Reportf(imp.Pos(), "import of %s in a deterministic executor path", p)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if obj, ok := pass.Pkg.Info.Uses[t.Sel].(*types.Func); ok {
					if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now" {
						pass.Reportf(t.Pos(), "time.Now in a deterministic executor path")
					}
				}
			case *ast.CallExpr:
				dt.checkTaintedCall(pass, t)
			case *ast.RangeStmt:
				dt.checkMapRange(pass, t)
			}
			return true
		})
	}
}

// checkTaintedCall consults the interprocedural summaries one level deep: a
// call from a scoped file into a function outside the scope that itself
// reads time.Now makes the caller nondeterministic just as surely as a
// direct read. In-scope callees are skipped — their own body is already
// flagged directly, so the intraprocedural diagnostics stay unchanged.
func (dt Determinism) checkTaintedCall(pass *Pass, call *ast.CallExpr) {
	if pass.Prog == nil {
		return
	}
	fn := resolvedCallee(pass.Pkg, call)
	if fn == nil {
		return
	}
	fi := pass.Prog.Funcs[fn]
	if fi == nil || !fi.CallsTimeNow || dt.inScopeFunc(pass, fi) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s reads the wall clock (time.Now at %s) in a deterministic executor path",
		fi.Name(), pass.Prog.shortPos(fi.TimeNowPos))
}

// inScopeFunc reports whether fi's declaration falls inside the analyzer's
// configured scope (and is therefore checked directly).
func (dt Determinism) inScopeFunc(pass *Pass, fi *FuncInfo) bool {
	for _, ref := range dt.Scope {
		if ref.Pkg != fi.Pkg.Path {
			continue
		}
		if len(ref.Files) == 0 {
			return true
		}
		base := filepath.Base(pass.Fset.Position(fi.Decl.Pos()).Filename)
		for _, want := range ref.Files {
			if base == want {
				return true
			}
		}
	}
	return false
}

// resolvedCallee statically resolves a call expression to the declared
// function it invokes, or nil (interface calls, func values, builtins).
func resolvedCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkMapRange flags appends into an outer slice from inside a range over a
// map: the append order then depends on Go's randomized map iteration.
func (dt Determinism) checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[id]
			}
			if obj != nil && obj.Pos() < rng.Pos() {
				pass.Reportf(as.Pos(),
					"append to %s while ranging over a map: iteration order is nondeterministic (sort keys first)", id.Name)
			}
		}
		return true
	})
}
