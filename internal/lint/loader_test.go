package lint

import (
	"strings"
	"testing"
)

// TestLoaderWholeModule type-checks every module package from source with
// the hand-rolled importer and requires zero soft errors: if this fails the
// analyzers would be reasoning over broken type information.
func TestLoaderWholeModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModulePath)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 25 {
		t.Fatalf("found only %d packages: %v", len(paths), paths)
	}
	var found bool
	for _, p := range paths {
		if p == "repro/internal/engine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("repro/internal/engine missing from %v", paths)
	}
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		for _, se := range pkg.SoftErrors {
			// Ignore complaints from stdlib sources; our own packages must
			// be clean.
			if strings.Contains(se.Error(), l.ModuleDir) {
				t.Errorf("%s: soft error: %v", p, se)
			}
		}
		if pkg.Types == nil || !pkg.Types.Complete() {
			t.Errorf("%s: incomplete package", p)
		}
	}
}
