package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"regexp"
)

// ParallelMerge guards the chunk-merge discipline of the parallel query
// executor: partial results produced by worker goroutines must be merged by
// iterating an explicitly recorded order (ascending chunk index, a
// first-seen key list), never by ranging over a map — Go randomizes map
// iteration order, so a map range in a merge path silently breaks the
// serial ≡ parallel byte-identity contract even when every element is
// handled correctly. Unlike the determinism analyzer's narrower
// map-range-into-append check, this one forbids map ranges in merge paths
// outright: merge output is ordered by definition, so there is no
// order-insensitive way to consume a map range there. Genuinely
// order-insensitive exceptions must carry //unidblint:ignore parallel-merge
// with a reason.
//
// Enforced functions are (a) every function declared in a file listed in a
// ScopeRef, and (b) any function elsewhere in a scoped package whose name
// matches FuncPattern — so helpers like mergePartials stay covered even if
// they move out of the listed files.
type ParallelMerge struct {
	// Scope lists (package path, file basenames). Every function in a
	// listed file is enforced; an empty file list enforces only
	// name-matched functions across the package.
	Scope []ScopeRef
	// FuncPattern selects additionally-enforced functions by name anywhere
	// in a scoped package; empty means `(?i)parallel|merge`.
	FuncPattern string
}

// Name implements Analyzer.
func (ParallelMerge) Name() string { return "parallel-merge" }

// Doc implements Analyzer.
func (ParallelMerge) Doc() string {
	return "parallel merge paths must not range over maps; merge in recorded chunk/group order"
}

// Run implements Analyzer.
func (pm ParallelMerge) Run(pass *Pass) {
	var files []string
	found := false
	for _, ref := range pm.Scope {
		if ref.Pkg == pass.Pkg.Path {
			found, files = true, ref.Files
			break
		}
	}
	if !found {
		return
	}
	pat := pm.FuncPattern
	if pat == "" {
		pat = `(?i)parallel|merge`
	}
	nameRx := regexp.MustCompile(pat)
	listed := func(f *ast.File) bool {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		for _, want := range files {
			if base == want {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Pkg.Files {
		fileEnforced := listed(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !fileEnforced && !nameRx.MatchString(fn.Name.Name) {
				continue
			}
			pm.checkFunc(pass, fn)
		}
	}
}

// checkFunc flags every range over a map-typed expression in the function
// body, including inside function literals (worker goroutine bodies).
func (pm ParallelMerge) checkFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over a map in parallel merge path %s: iteration order is nondeterministic; iterate the recorded chunk/group order instead",
			fn.Name.Name)
		return true
	})
}
