package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// The flow walker is a small path-sensitive abstract interpreter over
// function bodies, shared by lockcheck (mutexes) and txnend (transactions).
// It tracks "resources" identified by string keys through acquire/release
// events and reports any resource that may still be held at an exit point
// (return or falling off the end of the function).
//
// Approximations, chosen to favor real engine bugs over noise:
//   - A deferred release satisfies the resource immediately (defers run at
//     every later exit).
//   - Branch merge is a may-hold union: a resource held on any surviving
//     branch is held after the merge.
//   - break/continue/goto and panic/os.Exit terminate their path without an
//     exit check (panic unwinding is out of scope).
//   - Function literals are analyzed as independent functions; a release
//     inside a *deferred* literal counts as a deferred release.

type flowKind int

const (
	flowAcquire flowKind = iota
	flowRelease
	flowDeferRelease
)

type flowEvent struct {
	key  string
	kind flowKind
	pos  token.Pos
}

// flowLeak is one resource that may escape an exit point unreleased.
type flowLeak struct {
	Key        string
	AcquirePos token.Pos
	ExitPos    token.Pos
}

// eventsFunc extracts the acquire/release events of a single simple
// statement or expression subtree. Implementations must not descend into
// *ast.FuncLit (the walker handles deferred literals itself).
type eventsFunc func(n ast.Node) []flowEvent

// branchFunc lets a discipline refine state on the two arms of an if: it is
// called with the condition and negated=false for the then-branch,
// negated=true for the else-branch, returning events applied to that arm
// only. txnend uses it to model `if err != nil { ... }` after a Begin: on
// the error arm the transaction was never created, so it owes no Commit.
type branchFunc func(cond ast.Expr, negated bool) []flowEvent

type flowState struct {
	held map[string]token.Pos // key -> acquire position
}

func (s *flowState) clone() *flowState {
	c := &flowState{held: make(map[string]token.Pos, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

type flowWalker struct {
	events eventsFunc
	branch branchFunc // may be nil
	leaks  []flowLeak
}

// runFlow analyzes one function body and returns possible leaks, deduped by
// acquire position (the first exit that leaks wins). branch may be nil.
func runFlow(body *ast.BlockStmt, events eventsFunc, branch branchFunc) []flowLeak {
	w := &flowWalker{events: events, branch: branch}
	st := &flowState{held: map[string]token.Pos{}}
	if !w.walkStmts(body.List, st) {
		w.checkExit(st, body.End())
	}
	seen := map[token.Pos]bool{}
	var out []flowLeak
	for _, l := range w.leaks {
		if !seen[l.AcquirePos] {
			seen[l.AcquirePos] = true
			out = append(out, l)
		}
	}
	return out
}

func (w *flowWalker) checkExit(st *flowState, exit token.Pos) {
	for key, acq := range st.held {
		w.leaks = append(w.leaks, flowLeak{Key: key, AcquirePos: acq, ExitPos: exit})
	}
}

func (w *flowWalker) apply(st *flowState, evs []flowEvent) {
	for _, ev := range evs {
		switch ev.kind {
		case flowAcquire:
			st.held[ev.key] = ev.pos
		case flowRelease, flowDeferRelease:
			delete(st.held, ev.key)
		}
	}
}

// walkStmts processes a statement list; the returned bool reports whether
// every path through the list terminated (return/branch/panic).
func (w *flowWalker) walkStmts(stmts []ast.Stmt, st *flowState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) walkStmt(s ast.Stmt, st *flowState) bool {
	switch t := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.walkStmts(t.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(t.Stmt, st)
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			w.apply(st, w.events(res))
		}
		w.checkExit(st, t.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: stop propagating this path.
		return true
	case *ast.DeferStmt:
		w.apply(st, w.deferEvents(t))
		return false
	case *ast.GoStmt:
		// Arguments are evaluated now; the body runs later — extract
		// events from arguments only.
		for _, arg := range t.Call.Args {
			w.apply(st, w.events(arg))
		}
		return false
	case *ast.IfStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		w.apply(st, w.events(t.Cond))
		thenSt := st.clone()
		elseSt := st.clone()
		if w.branch != nil {
			w.apply(thenSt, w.branch(t.Cond, false))
			w.apply(elseSt, w.branch(t.Cond, true))
		}
		thenTerm := w.walkStmts(t.Body.List, thenSt)
		elseTerm := false
		if t.Else != nil {
			elseTerm = w.walkStmt(t.Else, elseSt)
		}
		return w.merge(st, thenSt, thenTerm, elseSt, elseTerm)
	case *ast.ForStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		if t.Cond != nil {
			w.apply(st, w.events(t.Cond))
		}
		bodySt := st.clone()
		w.walkStmts(t.Body.List, bodySt)
		if t.Post != nil {
			w.walkStmt(t.Post, bodySt)
		}
		// May-hold union of "loop ran" and "loop skipped".
		return w.merge(st, bodySt, false, st.clone(), false)
	case *ast.RangeStmt:
		w.apply(st, w.events(t.X))
		bodySt := st.clone()
		w.walkStmts(t.Body.List, bodySt)
		return w.merge(st, bodySt, false, st.clone(), false)
	case *ast.SwitchStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		if t.Tag != nil {
			w.apply(st, w.events(t.Tag))
		}
		return w.walkCases(t.Body, st, !hasDefault(t.Body))
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			w.walkStmt(t.Init, st)
		}
		w.walkStmt(t.Assign, st)
		return w.walkCases(t.Body, st, !hasDefault(t.Body))
	case *ast.SelectStmt:
		if len(t.Body.List) == 0 {
			return true // select{} blocks forever
		}
		return w.walkCases(t.Body, st, false)
	case *ast.ExprStmt:
		if isTerminalCall(t.X) {
			return true
		}
		w.apply(st, w.events(t.X))
		return false
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, EmptyStmt...
		w.apply(st, w.events(s))
		return false
	}
}

// walkCases analyzes each case clause against a copy of the entry state and
// merges the survivors. mayFallThrough adds the entry state itself as a
// survivor (a switch without default may match nothing).
func (w *flowWalker) walkCases(body *ast.BlockStmt, st *flowState, mayFallThrough bool) bool {
	var survivors []*flowState
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.apply(st, w.events(e))
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, st)
			}
			stmts = c.Body
		}
		caseSt := st.clone()
		if !w.walkStmts(stmts, caseSt) {
			allTerm = false
			survivors = append(survivors, caseSt)
		}
	}
	if mayFallThrough {
		allTerm = false
		survivors = append(survivors, st.clone())
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	merged := &flowState{held: map[string]token.Pos{}}
	for _, s := range survivors {
		for k, v := range s.held {
			merged.held[k] = v
		}
	}
	st.held = merged.held
	return false
}

// merge folds two branch outcomes back into st; returns true when both
// branches terminated.
func (w *flowWalker) merge(st *flowState, a *flowState, aTerm bool, b *flowState, bTerm bool) bool {
	if aTerm && bTerm {
		return true
	}
	held := map[string]token.Pos{}
	if !aTerm {
		for k, v := range a.held {
			held[k] = v
		}
	}
	if !bTerm {
		for k, v := range b.held {
			held[k] = v
		}
	}
	st.held = held
	return false
}

// deferEvents turns the releases inside a deferred call (direct method call
// or function literal body) into deferred releases; acquires inside a
// deferred body are ignored.
func (w *flowWalker) deferEvents(d *ast.DeferStmt) []flowEvent {
	var out []flowEvent
	scan := func(n ast.Node) {
		for _, ev := range w.events(n) {
			if ev.kind == flowRelease {
				ev.kind = flowDeferRelease
				out = append(out, ev)
			}
		}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		// defer func() { ...; mu.Unlock() }(): scan the literal body's
		// statements for releases (the events func skips nested literals).
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, isCall := n.(*ast.CallExpr); isCall {
				scan(call)
				return false
			}
			return true
		})
		return out
	}
	scan(d.Call)
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// isTerminalCall reports whether an expression statement never returns:
// panic(...), os.Exit(...), log.Fatal*(...), (*testing.T).Fatal*.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
			name == "Panic" || name == "Panicf" || name == "Panicln"
	}
	return false
}

// exprText renders an expression as compact source text — the walker's
// resource key for "same lock" (t.e.mu, lm.mu, ...).
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
