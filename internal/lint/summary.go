package lint

import (
	"go/token"
	"go/types"
	"sort"
)

// computeMayAcquire propagates lock-acquisition facts bottom-up through the
// call graph until a fixed point: a function may acquire everything it
// acquires directly plus everything any resolved callee may acquire. The
// iteration handles recursion and mutual recursion (SCCs) by simply
// re-running until no set grows — the lattice (sets of lock classes) is
// finite and the transfer function monotone, so this terminates.
//
// Witness positions point inside the function itself: the acquire site for a
// direct acquisition, or the call site that leads (transitively) to one, so
// diagnostics can show a chain the reader can follow one hop at a time.
func (p *Program) computeMayAcquire() {
	for _, fi := range p.funcList {
		for _, a := range fi.Acquires {
			if _, ok := fi.mayAcquire[a.class]; !ok {
				fi.mayAcquire[a.class] = a.pos
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range p.funcList {
			for _, c := range fi.Calls {
				callee := p.Funcs[c.callee]
				if callee == nil {
					continue
				}
				for class := range callee.mayAcquire {
					if _, ok := fi.mayAcquire[class]; !ok {
						fi.mayAcquire[class] = c.pos
						changed = true
					}
				}
			}
		}
	}
}

// MayAcquire reports whether fi may (transitively) acquire class, with a
// witness position inside fi.
func (fi *FuncInfo) MayAcquire(class string) (token.Pos, bool) {
	pos, ok := fi.mayAcquire[class]
	return pos, ok
}

// mayAcquireClasses returns fi's transitive acquisition set, sorted.
func (fi *FuncInfo) mayAcquireClasses() []string {
	out := make([]string, 0, len(fi.mayAcquire))
	for c := range fi.mayAcquire {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// acquireChain reconstructs a call chain from fi to a direct acquisition of
// class, following the witness positions recorded by the fixed point. Each
// element is "Pkg.Func (file:line)"; the final element acquires the lock
// directly. Returns nil if fi cannot acquire class.
func (p *Program) acquireChain(fi *FuncInfo, class string) []string {
	var chain []string
	seen := map[*FuncInfo]bool{}
	for fi != nil && !seen[fi] {
		seen[fi] = true
		pos, ok := fi.mayAcquire[class]
		if !ok {
			return nil
		}
		chain = append(chain, fi.Name()+" ("+p.shortPos(pos)+")")
		// Direct acquisition in fi?
		direct := false
		for _, a := range fi.Acquires {
			if a.class == class && a.pos == pos {
				direct = true
				break
			}
		}
		if direct {
			return chain
		}
		// Otherwise pos is a call site: follow it.
		var next *FuncInfo
		for _, c := range fi.Calls {
			if c.pos == pos {
				next = p.Funcs[c.callee]
				break
			}
		}
		fi = next
	}
	return chain
}

func (p *Program) shortPos(pos token.Pos) string {
	position := p.Fset.Position(pos)
	file := position.Filename
	for i := len(file) - 1; i >= 0; i-- {
		if file[i] == '/' {
			file = file[i+1:]
			break
		}
	}
	return file + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// methodsOf returns the FuncInfos of all methods declared on the named type
// in pkg path, for root-set construction.
func (p *Program) methodsOf(pkgPath, typeName string) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range p.funcList {
		if fi.Pkg.Path != pkgPath {
			continue
		}
		sig, ok := fi.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == typeName {
			out = append(out, fi)
		}
	}
	return out
}
