package docstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/mmvalue"
)

func setup(t *testing.T) (*engine.Engine, *Store) {
	t.Helper()
	e, err := engine.Open(engine.Options{Durability: engine.Ephemeral})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	s := New(e, catalog.New(e))
	if err := e.Update(func(tx *engine.Txn) error {
		return s.CreateCollection(tx, "orders", catalog.Schemaless)
	}); err != nil {
		t.Fatal(err)
	}
	return e, s
}

var orderDoc = mmvalue.MustParseJSON(`{"Order_no":"0c6df508","Orderlines":[
	{"Product_no":"2724f","Product_Name":"Toy","Price":66},
	{"Product_no":"3424g","Product_Name":"Book","Price":40}]}`)

func TestInsertGet(t *testing.T) {
	e, s := setup(t)
	var key string
	e.Update(func(tx *engine.Txn) error {
		var err error
		key, err = s.Insert(tx, "orders", orderDoc)
		return err
	})
	if key == "" {
		t.Fatal("no key generated")
	}
	e.View(func(tx *engine.Txn) error {
		doc, ok, err := s.Get(tx, "orders", key)
		if err != nil || !ok {
			t.Fatalf("Get = %v, %v", ok, err)
		}
		if doc.GetOr("Order_no").AsString() != "0c6df508" {
			t.Fatalf("doc = %v", doc)
		}
		if doc.GetOr(KeyField).AsString() != key {
			t.Fatal("stored doc missing _key")
		}
		return nil
	})
}

func TestInsertExplicitKeyAndDuplicate(t *testing.T) {
	e, s := setup(t)
	doc := orderDoc.Set(KeyField, mmvalue.String("o1"))
	e.Update(func(tx *engine.Txn) error {
		k, err := s.Insert(tx, "orders", doc)
		if k != "o1" {
			t.Fatalf("key = %s", k)
		}
		return err
	})
	err := e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "orders", doc)
		return err
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert = %v", err)
	}
}

func TestInsertIntoMissingCollection(t *testing.T) {
	e, s := setup(t)
	err := e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "nope", orderDoc)
		return err
	})
	if !errors.Is(err, ErrNoCollection) {
		t.Fatalf("missing collection = %v", err)
	}
}

func TestInsertNonObject(t *testing.T) {
	e, s := setup(t)
	err := e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "orders", mmvalue.Int(5))
		return err
	})
	if err == nil {
		t.Fatal("scalar insert should fail")
	}
}

func TestPutUpdateDelete(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		return s.Put(tx, "orders", "o1", orderDoc)
	})
	e.Update(func(tx *engine.Txn) error {
		return s.Update(tx, "orders", "o1", mmvalue.MustParseJSON(`{"status":"shipped"}`))
	})
	e.View(func(tx *engine.Txn) error {
		doc, _, _ := s.Get(tx, "orders", "o1")
		if doc.GetOr("status").AsString() != "shipped" {
			t.Fatalf("update lost: %v", doc)
		}
		if doc.GetOr("Order_no").AsString() != "0c6df508" {
			t.Fatal("update clobbered other fields")
		}
		return nil
	})
	err := e.Update(func(tx *engine.Txn) error {
		return s.Update(tx, "orders", "missing", mmvalue.Object())
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing = %v", err)
	}
	e.Update(func(tx *engine.Txn) error {
		existed, err := s.Delete(tx, "orders", "o1")
		if !existed || err != nil {
			t.Fatalf("Delete = %v, %v", existed, err)
		}
		return nil
	})
	if s.Count("orders") != 0 {
		t.Fatalf("Count = %d", s.Count("orders"))
	}
}

func TestScanOrder(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		for _, k := range []string{"c", "a", "b"} {
			if err := s.Put(tx, "orders", k, mmvalue.Object()); err != nil {
				return err
			}
		}
		return nil
	})
	var keys []string
	e.View(func(tx *engine.Txn) error {
		return s.Scan(tx, "orders", func(k string, d mmvalue.Value) bool {
			keys = append(keys, k)
			return true
		})
	})
	if !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Fatalf("scan order = %v", keys)
	}
}

func TestSchemaEnforcement(t *testing.T) {
	e, s := setup(t)
	schema := catalog.Schema{
		Mode: catalog.SchemaFull,
		Fields: []catalog.FieldDef{
			{Name: "name", Type: mmvalue.KindString, Required: true},
		},
	}
	e.Update(func(tx *engine.Txn) error {
		return s.CreateCollection(tx, "people", schema)
	})
	err := e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "people", mmvalue.MustParseJSON(`{"nope":1}`))
		return err
	})
	if err == nil {
		t.Fatal("schema-full collection accepted invalid doc")
	}
	err = e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "people", mmvalue.MustParseJSON(`{"name":"Mary"}`))
		return err
	})
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
}

func seedIndexed(t *testing.T, e *engine.Engine, s *Store) {
	t.Helper()
	err := e.Update(func(tx *engine.Txn) error {
		s.CreateCollection(tx, "customers", catalog.Schemaless)
		for i, c := range []struct {
			name   string
			credit int64
		}{{"Mary", 5000}, {"John", 3000}, {"Anne", 2000}} {
			doc := mmvalue.Object(
				mmvalue.F(KeyField, mmvalue.String(fmt.Sprintf("c%d", i+1))),
				mmvalue.F("name", mmvalue.String(c.name)),
				mmvalue.F("credit_limit", mmvalue.Int(c.credit)),
			)
			if _, err := s.Insert(tx, "customers", doc); err != nil {
				return err
			}
		}
		return s.CreateIndex(tx, "customers", IndexDef{Name: "by_credit", Path: "credit_limit"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryIndexLookups(t *testing.T) {
	e, s := setup(t)
	seedIndexed(t, e, s)
	e.View(func(tx *engine.Txn) error {
		keys, err := s.LookupEq(tx, "customers", "by_credit", mmvalue.Int(3000))
		if err != nil || !reflect.DeepEqual(keys, []string{"c2"}) {
			t.Fatalf("LookupEq = %v, %v", keys, err)
		}
		// Range: credit > 3000 (exclusive low, unbounded high).
		keys, err = s.LookupRange(tx, "customers", "by_credit",
			Bound{Value: mmvalue.Int(3000)}, Bound{Unbounded: true})
		if err != nil || !reflect.DeepEqual(keys, []string{"c1"}) {
			t.Fatalf("LookupRange(>3000) = %v, %v", keys, err)
		}
		// Range: credit >= 3000.
		keys, _ = s.LookupRange(tx, "customers", "by_credit",
			Bound{Value: mmvalue.Int(3000), Inclusive: true}, Bound{Unbounded: true})
		if !reflect.DeepEqual(keys, []string{"c2", "c1"}) {
			t.Fatalf("LookupRange(>=3000) = %v", keys)
		}
		// Range: 2000 <= credit <= 3000.
		keys, _ = s.LookupRange(tx, "customers", "by_credit",
			Bound{Value: mmvalue.Int(2000), Inclusive: true},
			Bound{Value: mmvalue.Int(3000), Inclusive: true})
		if !reflect.DeepEqual(keys, []string{"c3", "c2"}) {
			t.Fatalf("LookupRange(between) = %v", keys)
		}
		return nil
	})
}

func TestIndexMaintainedOnUpdateAndDelete(t *testing.T) {
	e, s := setup(t)
	seedIndexed(t, e, s)
	e.Update(func(tx *engine.Txn) error {
		return s.Update(tx, "customers", "c3", mmvalue.MustParseJSON(`{"credit_limit":9000}`))
	})
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "customers", "by_credit", mmvalue.Int(2000))
		if len(keys) != 0 {
			t.Fatalf("stale index entry: %v", keys)
		}
		keys, _ = s.LookupEq(tx, "customers", "by_credit", mmvalue.Int(9000))
		if !reflect.DeepEqual(keys, []string{"c3"}) {
			t.Fatalf("new index entry missing: %v", keys)
		}
		return nil
	})
	e.Update(func(tx *engine.Txn) error {
		_, err := s.Delete(tx, "customers", "c1")
		return err
	})
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "customers", "by_credit", mmvalue.Int(5000))
		if len(keys) != 0 {
			t.Fatalf("index entry survived delete: %v", keys)
		}
		return nil
	})
}

func TestIndexRollbackOnAbort(t *testing.T) {
	e, s := setup(t)
	seedIndexed(t, e, s)
	tx, _ := e.Begin()
	s.Put(tx, "customers", "c9", mmvalue.MustParseJSON(`{"credit_limit":7777}`))
	tx.Abort()
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "customers", "by_credit", mmvalue.Int(7777))
		if len(keys) != 0 {
			t.Fatalf("index entry survived abort: %v", keys)
		}
		return nil
	})
}

func TestMultiValuedIndexPath(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		s.Put(tx, "orders", "o1", orderDoc)
		return s.CreateIndex(tx, "orders", IndexDef{Name: "by_product", Path: "Orderlines[*].Product_no"})
	})
	e.View(func(tx *engine.Txn) error {
		for _, p := range []string{"2724f", "3424g"} {
			keys, err := s.LookupEq(tx, "orders", "by_product", mmvalue.String(p))
			if err != nil || !reflect.DeepEqual(keys, []string{"o1"}) {
				t.Fatalf("LookupEq(%s) = %v, %v", p, keys, err)
			}
		}
		return nil
	})
}

func TestUniqueIndex(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		s.CreateCollection(tx, "users", catalog.Schemaless)
		return s.CreateIndex(tx, "users", IndexDef{Name: "by_email", Path: "email", Unique: true})
	})
	e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "users", mmvalue.MustParseJSON(`{"email":"a@x"}`))
		return err
	})
	err := e.Update(func(tx *engine.Txn) error {
		_, err := s.Insert(tx, "users", mmvalue.MustParseJSON(`{"email":"a@x"}`))
		return err
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique violation = %v", err)
	}
	// Upsert of the same document does not self-conflict.
	err = e.Update(func(tx *engine.Txn) error {
		keys, err := s.LookupEq(tx, "users", "by_email", mmvalue.String("a@x"))
		if err != nil || len(keys) != 1 {
			return fmt.Errorf("lookup: %v %v", keys, err)
		}
		return s.Put(tx, "users", keys[0], mmvalue.MustParseJSON(`{"email":"a@x","n":1}`))
	})
	if err != nil {
		t.Fatalf("self upsert = %v", err)
	}
}

func TestSparseIndex(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		s.CreateCollection(tx, "mixed", catalog.Schemaless)
		s.Put(tx, "mixed", "with", mmvalue.MustParseJSON(`{"tag":"x"}`))
		s.Put(tx, "mixed", "without", mmvalue.MustParseJSON(`{"other":1}`))
		return s.CreateIndex(tx, "mixed", IndexDef{Name: "sparse_tag", Path: "tag", Sparse: true})
	})
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "mixed", "sparse_tag", mmvalue.Null)
		if len(keys) != 0 {
			t.Fatalf("sparse index has null entries: %v", keys)
		}
		return nil
	})
	// Non-sparse indexes record null for missing paths.
	e.Update(func(tx *engine.Txn) error {
		return s.CreateIndex(tx, "mixed", IndexDef{Name: "dense_tag", Path: "tag"})
	})
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "mixed", "dense_tag", mmvalue.Null)
		if !reflect.DeepEqual(keys, []string{"without"}) {
			t.Fatalf("dense index null entries = %v", keys)
		}
		return nil
	})
}

func TestCreateIndexBackfillsAndDrop(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		for i := 0; i < 10; i++ {
			s.Put(tx, "orders", fmt.Sprintf("o%d", i), mmvalue.Object(mmvalue.F("n", mmvalue.Int(int64(i)))))
		}
		return nil
	})
	e.Update(func(tx *engine.Txn) error {
		return s.CreateIndex(tx, "orders", IndexDef{Name: "by_n", Path: "n"})
	})
	e.View(func(tx *engine.Txn) error {
		keys, _ := s.LookupEq(tx, "orders", "by_n", mmvalue.Int(7))
		if !reflect.DeepEqual(keys, []string{"o7"}) {
			t.Fatalf("backfill missing: %v", keys)
		}
		return nil
	})
	// Duplicate index name.
	err := e.Update(func(tx *engine.Txn) error {
		return s.CreateIndex(tx, "orders", IndexDef{Name: "by_n", Path: "n"})
	})
	if err == nil {
		t.Fatal("duplicate index name accepted")
	}
	e.Update(func(tx *engine.Txn) error { return s.DropIndex(tx, "orders", "by_n") })
	e.View(func(tx *engine.Txn) error {
		defs, _ := s.Indexes(tx, "orders")
		if len(defs) != 0 {
			t.Fatalf("indexes after drop = %v", defs)
		}
		return nil
	})
}

func TestDropCollection(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		s.Put(tx, "orders", "o1", orderDoc)
		return s.CreateIndex(tx, "orders", IndexDef{Name: "i", Path: "Order_no"})
	})
	e.Update(func(tx *engine.Txn) error { return s.DropCollection(tx, "orders") })
	e.View(func(tx *engine.Txn) error {
		colls, _ := s.Collections(tx)
		if len(colls) != 0 {
			t.Fatalf("collections = %v", colls)
		}
		return nil
	})
	if s.Count("orders") != 0 {
		t.Fatal("data survived drop")
	}
}

func TestCollectionsList(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		return s.CreateCollection(tx, "another", catalog.Schemaless)
	})
	e.View(func(tx *engine.Txn) error {
		colls, _ := s.Collections(tx)
		if !reflect.DeepEqual(colls, []string{"another", "orders"}) {
			t.Fatalf("Collections = %v", colls)
		}
		return nil
	})
}
