// Package docstore implements the document data model: named collections of
// JSON-like documents with a primary key, schema modes, and transactional
// secondary indexes (the ArangoDB / Couchbase / MarkLogic rows of the
// paper's classification).
//
// Layout on the integrated backend:
//
//	doc:<coll>              primary data: keyenc(_key) -> binenc(document)
//	idx:doc:<coll>:<name>   secondary B+tree index: keyenc(value, _key) -> ""
//
// Because secondary indexes live in keyspaces, index maintenance is part of
// the same engine transaction as the document write — abort rolls both
// back. Hash, GIN, and full-text accelerators are maintained separately as
// log subscribers (see internal/core), mirroring the paper's OctopusDB
// "storage views over a central log".
package docstore

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/binenc"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/keyenc"
	"repro/internal/mmvalue"
)

// KeyField is the reserved primary-key attribute of every document
// (ArangoDB's _key).
const KeyField = "_key"

// ErrNoCollection is returned for operations on unregistered collections.
var ErrNoCollection = errors.New("docstore: no such collection")

// ErrDuplicateKey is returned when inserting an existing _key or violating
// a unique index.
var ErrDuplicateKey = errors.New("docstore: duplicate key")

// ErrNotFound is returned when a referenced document does not exist.
var ErrNotFound = errors.New("docstore: document not found")

// IndexDef describes a secondary index.
type IndexDef struct {
	Name   string
	Path   string // mmvalue path, may contain [*]
	Unique bool
	Sparse bool // skip documents where the path is missing
}

// Store provides document operations within engine transactions.
type Store struct {
	e      engine.Sizer
	cat    *catalog.Catalog
	keySeq atomic.Uint64
	// dc memoizes decoded documents on the point-lookup path (DOCUMENT()
	// in queries); entries are validated against the raw bytes each read
	// returns, so transactional visibility is unchanged.
	dc *binenc.DecodeCache
}

// New returns a document store over the engine.
func New(e engine.Sizer, cat *catalog.Catalog) *Store {
	return &Store{e: e, cat: cat, dc: binenc.NewDecodeCache(8192)}
}

// Keyspace returns the engine keyspace of a collection's primary data.
func Keyspace(coll string) string { return "doc:" + coll }

// IndexKeyspace returns the engine keyspace of a secondary index.
func IndexKeyspace(coll, idx string) string { return "idx:doc:" + coll + ":" + idx }

const catKind = "collection"

// CreateCollection registers a collection with a schema.
func (s *Store) CreateCollection(tx engine.Tx, name string, schema catalog.Schema) error {
	meta := mmvalue.Object(
		mmvalue.F("schema", catalog.SchemaValue(schema)),
		mmvalue.F("indexes", mmvalue.Array()),
	)
	return s.cat.Create(tx, catKind, name, meta)
}

// DropCollection removes a collection, its data, and its indexes.
func (s *Store) DropCollection(tx engine.Tx, name string) error {
	meta, err := s.meta(tx, name)
	if err != nil {
		return err
	}
	for _, def := range indexDefs(meta) {
		if err := tx.DropKeyspace(IndexKeyspace(name, def.Name)); err != nil {
			return err
		}
	}
	if err := tx.DropKeyspace(Keyspace(name)); err != nil {
		return err
	}
	return s.cat.Delete(tx, catKind, name)
}

// Collections lists collection names.
func (s *Store) Collections(tx engine.Tx) ([]string, error) {
	entries, err := s.cat.List(tx, catKind)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names, nil
}

func (s *Store) meta(tx engine.Tx, coll string) (mmvalue.Value, error) {
	meta, err := s.cat.Get(tx, catKind, coll)
	if errors.Is(err, catalog.ErrNotFound) {
		return mmvalue.Null, fmt.Errorf("%w: %q", ErrNoCollection, coll)
	}
	return meta, err
}

func indexDefs(meta mmvalue.Value) []IndexDef {
	var defs []IndexDef
	for _, v := range meta.GetOr("indexes").AsArray() {
		defs = append(defs, IndexDef{
			Name:   v.GetOr("name").AsString(),
			Path:   v.GetOr("path").AsString(),
			Unique: v.GetOr("unique").AsBool(),
			Sparse: v.GetOr("sparse").AsBool(),
		})
	}
	return defs
}

func indexDefValue(d IndexDef) mmvalue.Value {
	return mmvalue.Object(
		mmvalue.F("name", mmvalue.String(d.Name)),
		mmvalue.F("path", mmvalue.String(d.Path)),
		mmvalue.F("unique", mmvalue.Bool(d.Unique)),
		mmvalue.F("sparse", mmvalue.Bool(d.Sparse)),
	)
}

// GenerateKey returns a fresh unique document key.
func (s *Store) GenerateKey() string {
	return "d" + strconv.FormatUint(s.keySeq.Add(1), 36)
}

// Insert stores a new document. The key comes from doc's _key field or is
// generated; the stored document always carries _key. Returns the key.
func (s *Store) Insert(tx engine.Tx, coll string, doc mmvalue.Value) (string, error) {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return "", err
	}
	if doc.Kind() != mmvalue.KindObject {
		return "", fmt.Errorf("docstore: document must be an object, got %v", doc.Kind())
	}
	key := doc.GetOr(KeyField).AsString()
	if key == "" {
		key = s.GenerateKey()
		doc = doc.Set(KeyField, mmvalue.String(key))
	}
	schema := catalog.SchemaFromValue(meta.GetOr("schema"))
	if err := schema.Validate(doc.Delete(KeyField)); err != nil {
		return "", err
	}
	pk := keyenc.AppendString(nil, key)
	if _, ok, err := tx.Get(Keyspace(coll), pk); err != nil {
		return "", err
	} else if ok {
		return "", fmt.Errorf("%w: %s/%s", ErrDuplicateKey, coll, key)
	}
	if err := s.indexAdd(tx, coll, indexDefs(meta), key, doc); err != nil {
		return "", err
	}
	return key, tx.Put(Keyspace(coll), pk, binenc.Encode(doc))
}

// Put upserts a document under an explicit key.
func (s *Store) Put(tx engine.Tx, coll, key string, doc mmvalue.Value) error {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return err
	}
	if doc.Kind() != mmvalue.KindObject {
		return fmt.Errorf("docstore: document must be an object, got %v", doc.Kind())
	}
	doc = doc.Set(KeyField, mmvalue.String(key))
	schema := catalog.SchemaFromValue(meta.GetOr("schema"))
	if err := schema.Validate(doc.Delete(KeyField)); err != nil {
		return err
	}
	defs := indexDefs(meta)
	pk := keyenc.AppendString(nil, key)
	if raw, ok, err := tx.Get(Keyspace(coll), pk); err != nil {
		return err
	} else if ok {
		old, err := binenc.Decode(raw)
		if err != nil {
			return err
		}
		if err := s.indexRemove(tx, coll, defs, key, old); err != nil {
			return err
		}
	}
	if err := s.indexAdd(tx, coll, defs, key, doc); err != nil {
		return err
	}
	return tx.Put(Keyspace(coll), pk, binenc.Encode(doc))
}

// Get fetches a document by key.
func (s *Store) Get(tx engine.Tx, coll, key string) (mmvalue.Value, bool, error) {
	raw, ok, err := tx.Get(Keyspace(coll), keyenc.AppendString(nil, key))
	if err != nil || !ok {
		return mmvalue.Null, false, err
	}
	doc, err := s.dc.Decode(raw)
	if err != nil {
		return mmvalue.Null, false, err
	}
	return doc, true, nil
}

// Update merges patch into the existing document (shallow merge, AQL UPDATE
// semantics). Fails if the document does not exist.
func (s *Store) Update(tx engine.Tx, coll, key string, patch mmvalue.Value) error {
	old, ok, err := s.Get(tx, coll, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, coll, key)
	}
	return s.Put(tx, coll, key, old.Merge(patch))
}

// Delete removes a document, reporting whether it existed.
func (s *Store) Delete(tx engine.Tx, coll, key string) (bool, error) {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return false, err
	}
	pk := keyenc.AppendString(nil, key)
	raw, ok, err := tx.Get(Keyspace(coll), pk)
	if err != nil || !ok {
		return false, err
	}
	old, err := binenc.Decode(raw)
	if err != nil {
		return false, err
	}
	if err := s.indexRemove(tx, coll, indexDefs(meta), key, old); err != nil {
		return false, err
	}
	return true, tx.Delete(Keyspace(coll), pk)
}

// Scan iterates every document of a collection in key order.
func (s *Store) Scan(tx engine.Tx, coll string, fn func(key string, doc mmvalue.Value) bool) error {
	var decodeErr error
	err := tx.Scan(Keyspace(coll), nil, nil, func(k, v []byte) bool {
		doc, err := binenc.Decode(v)
		if err != nil {
			decodeErr = err
			return false
		}
		parts, err := keyenc.Decode(k)
		if err != nil || len(parts) == 0 {
			decodeErr = fmt.Errorf("docstore: corrupt primary key: %w", err)
			return false
		}
		return fn(parts[0].AsString(), doc)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// Count returns the number of documents (engine statistic).
func (s *Store) Count(coll string) int { return s.e.KeyspaceLen(Keyspace(coll)) }

// --- Secondary indexes ---

// CreateIndex registers and backfills a B+tree secondary index over a path.
func (s *Store) CreateIndex(tx engine.Tx, coll string, def IndexDef) error {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return err
	}
	for _, d := range indexDefs(meta) {
		if d.Name == def.Name {
			return fmt.Errorf("docstore: index %q already exists on %q", def.Name, coll)
		}
	}
	if _, err := mmvalue.ParsePath(def.Path); err != nil {
		return err
	}
	// Backfill from existing documents.
	type pair struct {
		key string
		doc mmvalue.Value
	}
	var docs []pair
	if err := s.Scan(tx, coll, func(key string, doc mmvalue.Value) bool {
		docs = append(docs, pair{key, doc})
		return true
	}); err != nil {
		return err
	}
	for _, p := range docs {
		if err := s.indexAddOne(tx, coll, def, p.key, p.doc); err != nil {
			return err
		}
	}
	idxs := meta.GetOr("indexes")
	meta = meta.Set("indexes", mmvalue.ArrayOf(append(idxs.AsArray(), indexDefValue(def))))
	return s.cat.Put(tx, catKind, coll, meta)
}

// DropIndex removes an index and its data.
func (s *Store) DropIndex(tx engine.Tx, coll, name string) error {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return err
	}
	var kept []mmvalue.Value
	found := false
	for _, v := range meta.GetOr("indexes").AsArray() {
		if v.GetOr("name").AsString() == name {
			found = true
			continue
		}
		kept = append(kept, v)
	}
	if !found {
		return fmt.Errorf("docstore: no index %q on %q", name, coll)
	}
	if err := tx.DropKeyspace(IndexKeyspace(coll, name)); err != nil {
		return err
	}
	meta = meta.Set("indexes", mmvalue.ArrayOf(kept))
	return s.cat.Put(tx, catKind, coll, meta)
}

// Indexes returns the index definitions of a collection.
func (s *Store) Indexes(tx engine.Tx, coll string) ([]IndexDef, error) {
	meta, err := s.meta(tx, coll)
	if err != nil {
		return nil, err
	}
	return indexDefs(meta), nil
}

// indexedValues extracts the values a document contributes to an index.
func indexedValues(def IndexDef, doc mmvalue.Value) []mmvalue.Value {
	path := mmvalue.MustParsePath(def.Path)
	vals := path.ExtractAll(doc)
	if len(vals) == 0 && !def.Sparse {
		// Non-sparse indexes record missing paths as null, like ArangoDB's
		// non-sparse hash indexes.
		return []mmvalue.Value{mmvalue.Null}
	}
	return vals
}

func indexEntryKey(v mmvalue.Value, docKey string) []byte {
	k := keyenc.Append(nil, v)
	return keyenc.AppendString(k, docKey)
}

func (s *Store) indexAdd(tx engine.Tx, coll string, defs []IndexDef, key string, doc mmvalue.Value) error {
	for _, def := range defs {
		if err := s.indexAddOne(tx, coll, def, key, doc); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) indexAddOne(tx engine.Tx, coll string, def IndexDef, key string, doc mmvalue.Value) error {
	ks := IndexKeyspace(coll, def.Name)
	for _, v := range indexedValues(def, doc) {
		if def.Unique {
			// Any entry with the same value prefix violates uniqueness.
			lo := keyenc.Append(nil, v)
			hi := keyenc.AppendMax(keyenc.Append(nil, v))
			conflict := false
			if err := tx.Scan(ks, lo, hi, func(k, _ []byte) bool {
				conflict = true
				return false
			}); err != nil {
				return err
			}
			if conflict {
				return fmt.Errorf("%w: unique index %q value %v", ErrDuplicateKey, def.Name, v)
			}
		}
		if err := tx.Put(ks, indexEntryKey(v, key), nil); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) indexRemove(tx engine.Tx, coll string, defs []IndexDef, key string, doc mmvalue.Value) error {
	for _, def := range defs {
		ks := IndexKeyspace(coll, def.Name)
		for _, v := range indexedValues(def, doc) {
			if err := tx.Delete(ks, indexEntryKey(v, key)); err != nil {
				return err
			}
		}
	}
	return nil
}

// LookupEq returns the keys of documents whose indexed value equals v.
func (s *Store) LookupEq(tx engine.Tx, coll, idx string, v mmvalue.Value) ([]string, error) {
	lo := keyenc.Append(nil, v)
	hi := keyenc.AppendMax(keyenc.Append(nil, v))
	return s.lookupRangeRaw(tx, IndexKeyspace(coll, idx), lo, hi)
}

// Bound describes one end of an index range.
type Bound struct {
	Value     mmvalue.Value
	Inclusive bool
	Unbounded bool
}

// LookupRange returns document keys with lo <= value <= hi per the bounds
// (B+tree indexes support ranges; this is the capability hash indexes lack
// in E4).
func (s *Store) LookupRange(tx engine.Tx, coll, idx string, lo, hi Bound) ([]string, error) {
	var loKey, hiKey []byte
	switch {
	case lo.Unbounded:
		loKey = nil
	case lo.Inclusive:
		loKey = keyenc.Append(nil, lo.Value)
	default:
		loKey = keyenc.AppendMax(keyenc.Append(nil, lo.Value))
	}
	switch {
	case hi.Unbounded:
		hiKey = nil
	case hi.Inclusive:
		hiKey = keyenc.AppendMax(keyenc.Append(nil, hi.Value))
	default:
		hiKey = keyenc.Append(nil, hi.Value)
	}
	return s.lookupRangeRaw(tx, IndexKeyspace(coll, idx), loKey, hiKey)
}

func (s *Store) lookupRangeRaw(tx engine.Tx, ks string, lo, hi []byte) ([]string, error) {
	var keys []string
	var decodeErr error
	err := tx.Scan(ks, lo, hi, func(k, _ []byte) bool {
		parts, err := keyenc.Decode(k)
		if err != nil || len(parts) < 2 {
			decodeErr = fmt.Errorf("docstore: corrupt index entry: %w", err)
			return false
		}
		keys = append(keys, parts[len(parts)-1].AsString())
		return true
	})
	if err != nil {
		return nil, err
	}
	return keys, decodeErr
}

// DecodeRecord decodes an engine record from a doc keyspace back into
// (docKey, document); used by log subscribers maintaining auxiliary indexes.
func DecodeRecord(key, value []byte) (string, mmvalue.Value, error) {
	parts, err := keyenc.Decode(key)
	if err != nil || len(parts) == 0 {
		return "", mmvalue.Null, fmt.Errorf("docstore: corrupt key: %w", err)
	}
	if value == nil {
		return parts[0].AsString(), mmvalue.Null, nil
	}
	doc, err := binenc.Decode(value)
	if err != nil {
		return "", mmvalue.Null, err
	}
	return parts[0].AsString(), doc, nil
}
