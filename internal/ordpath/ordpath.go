// Package ordpath implements ORDPATH node labels (O'Neil et al., the
// numbering scheme the paper attributes to Oracle's XMLIndex: "the position
// of each node is preserved using a variant of the ORDPATHS numbering
// schema").
//
// A label is a sequence of integer components: the root is [1], its children
// [1 1], [1 3], [1 5], … — initial sibling components are odd. Inserting
// between two siblings never relabels existing nodes: even "caret"
// components extend the label ([1 2 1] sorts between [1 1] and [1 3]).
//
// Labels answer, by themselves, the three structural questions XML indexes
// need: document order (lexicographic component comparison), ancestry
// (label prefixing, where even components do not add depth), and depth.
package ordpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/keyenc"
	"repro/internal/mmvalue"
)

// Label is an ORDPATH node label. Labels are immutable; operations return
// fresh slices.
type Label []int64

// Root returns the root label [1].
func Root() Label { return Label{1} }

// String renders the label in dotted form, e.g. "1.3.5".
func (l Label) String() string {
	parts := make([]string, len(l))
	for i, c := range l {
		parts[i] = strconv.FormatInt(c, 10)
	}
	return strings.Join(parts, ".")
}

// Parse reads a dotted label.
func Parse(s string) (Label, error) {
	if s == "" {
		return nil, fmt.Errorf("ordpath: empty label")
	}
	parts := strings.Split(s, ".")
	l := make(Label, len(parts))
	for i, p := range parts {
		c, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ordpath: bad component %q: %w", p, err)
		}
		l[i] = c
	}
	return l, nil
}

// Compare orders labels in document order (component-wise, shorter prefix
// first — an ancestor precedes its descendants).
func Compare(a, b Label) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports label equality.
func Equal(a, b Label) bool { return Compare(a, b) == 0 }

// Clone returns an independent copy.
func (l Label) Clone() Label {
	out := make(Label, len(l))
	copy(out, l)
	return out
}

// FirstChild returns the label of a first child: parent + [1].
func (l Label) FirstChild() Label {
	return append(l.Clone(), 1)
}

// NextSibling returns the label following l at the same conceptual depth:
// the last component + 2 (staying odd).
func (l Label) NextSibling() Label {
	out := l.Clone()
	out[len(out)-1] += 2
	return out
}

// Between returns a label strictly between a and b in document order, for
// inserting a sibling without relabeling — the ORDPATH "careting" property.
// Even caret components supply unbounded insertion room; the returned label
// always ends in an odd component, so Depth and Parent remain exact. a must
// precede b, and a must not be an ancestor of b (there is no position
// between a node and its first descendant that is a sibling of either).
func Between(a, b Label) (Label, error) {
	if Compare(a, b) >= 0 {
		return nil, fmt.Errorf("ordpath: Between requires a < b")
	}
	// Find the first differing component.
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	if i >= len(a) {
		return nil, fmt.Errorf("ordpath: %v is an ancestor of %v", a, b)
	}
	var out Label
	switch {
	case b[i] >= a[i]+2:
		// Room at this level: even caret a[i]+1 then ordinal 1.
		out = append(a.prefix(i), a[i]+1, 1)
	case i < len(b)-1:
		// b[i] == a[i]+1 and b continues: descend along b and slot in
		// just before its continuation.
		out = append(b.prefix(i+1), lowBefore(b[i+1:])...)
	default:
		// b ends at i and a continues: caret just after a's final
		// component.
		out = append(a.prefix(len(a)-1), a[len(a)-1]+1, 1)
	}
	if Compare(a, out) >= 0 || Compare(out, b) >= 0 {
		return nil, fmt.Errorf("ordpath: no room between %v and %v", a, b)
	}
	return out, nil
}

// lowBefore returns a component suffix that sorts before rest while ending
// in an odd ordinal (preserving depth accounting).
func lowBefore(rest Label) Label {
	if rest[0]%2 != 0 {
		return Label{rest[0] - 1, 1} // even caret, then ordinal 1
	}
	// Even (caret) head: keep it and descend.
	return append(Label{rest[0]}, lowBefore(rest[1:])...)
}

// Clone of prefix helper for Between.
func (l Label) prefix(n int) Label {
	out := make(Label, n)
	copy(out, l[:n])
	return out
}

// IsAncestorOf reports whether l is a proper ancestor of other under
// ORDPATH semantics: l's components prefix other's, ignoring trailing caret
// structure (even components never terminate a real node label here because
// Between always appends an odd component after the caret, so plain prefix
// comparison is exact).
func (l Label) IsAncestorOf(other Label) bool {
	if len(other) <= len(l) {
		return false
	}
	for i, c := range l {
		if other[i] != c {
			return false
		}
	}
	return true
}

// Depth returns the conceptual tree depth of the label: the number of odd
// components (even caret components add ordering room, not depth).
func (l Label) Depth() int {
	d := 0
	for _, c := range l {
		if c%2 != 0 {
			d++
		}
	}
	return d
}

// Parent returns the label of the conceptual parent: strip the final odd
// component and any even caret components before it. Returns nil for the
// root.
func (l Label) Parent() Label {
	if len(l) <= 1 {
		return nil
	}
	i := len(l) - 1 // final component is odd for real nodes
	i--             // skip it
	for i >= 0 && l[i]%2 == 0 {
		i--
	}
	return l.prefix(i + 1)
}

// Key encodes the label as an order-preserving byte key (via the keyenc
// tuple layer), so ORDPATH order is byte order in the engine's keyspaces.
func (l Label) Key() []byte {
	arr := make([]mmvalue.Value, len(l))
	for i, c := range l {
		arr[i] = mmvalue.Int(c)
	}
	return keyenc.Encode(mmvalue.ArrayOf(arr))
}

// FromKey decodes a label from its keyenc form.
func FromKey(key []byte) (Label, error) {
	vals, err := keyenc.Decode(key)
	if err != nil || len(vals) != 1 {
		return nil, fmt.Errorf("ordpath: bad key: %w", err)
	}
	arr := vals[0].AsArray()
	l := make(Label, len(arr))
	for i, v := range arr {
		l[i] = v.AsInt()
	}
	return l, nil
}
