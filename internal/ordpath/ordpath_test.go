package ordpath

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootAndChildren(t *testing.T) {
	r := Root()
	if r.String() != "1" {
		t.Fatalf("Root = %s", r)
	}
	c1 := r.FirstChild()
	if c1.String() != "1.1" {
		t.Fatalf("FirstChild = %s", c1)
	}
	c2 := c1.NextSibling()
	c3 := c2.NextSibling()
	if c2.String() != "1.3" || c3.String() != "1.5" {
		t.Fatalf("siblings = %s, %s", c2, c3)
	}
	if d := c3.Depth(); d != 2 {
		t.Fatalf("Depth = %d", d)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "1.3.5", "1.2.1", "1.0.1"} {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%s): %v", s, err)
		}
		if l.String() != s {
			t.Fatalf("round trip %s -> %s", s, l)
		}
	}
	for _, bad := range []string{"", "1.", "a", "1..2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	// Pre-order document order: parent before children, siblings in order.
	ordered := []string{"1", "1.1", "1.1.1", "1.1.3", "1.2.1", "1.3", "1.5", "3"}
	for i := 0; i+1 < len(ordered); i++ {
		a, _ := Parse(ordered[i])
		b, _ := Parse(ordered[i+1])
		if Compare(a, b) >= 0 {
			t.Errorf("Compare(%s, %s) should be < 0", a, b)
		}
		if Compare(b, a) <= 0 {
			t.Errorf("Compare(%s, %s) should be > 0", b, a)
		}
	}
	a, _ := Parse("1.3")
	if Compare(a, a) != 0 || !Equal(a, a) {
		t.Error("self compare != 0")
	}
}

func TestAncestry(t *testing.T) {
	root := Root()
	child := root.FirstChild()
	grand := child.FirstChild()
	if !root.IsAncestorOf(child) || !root.IsAncestorOf(grand) || !child.IsAncestorOf(grand) {
		t.Fatal("ancestry chain broken")
	}
	if child.IsAncestorOf(root) || child.IsAncestorOf(child) {
		t.Fatal("bogus ancestry")
	}
	sib := child.NextSibling()
	if child.IsAncestorOf(sib) || sib.IsAncestorOf(child) {
		t.Fatal("siblings are not ancestors")
	}
}

func TestParent(t *testing.T) {
	root := Root()
	if root.Parent() != nil {
		t.Fatal("root has no parent")
	}
	c := root.FirstChild().NextSibling() // 1.3
	if !Equal(c.Parent(), root) {
		t.Fatalf("Parent(%s) = %s", c, c.Parent())
	}
	// Caret-inserted sibling keeps the same parent.
	a := root.FirstChild()    // 1.1
	b := a.NextSibling()      // 1.3
	mid, err := Between(a, b) // 1.2.1
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(mid.Parent(), root) {
		t.Fatalf("caret parent = %s, want %s", mid.Parent(), root)
	}
	if mid.Depth() != a.Depth() {
		t.Fatalf("caret depth = %d, want %d", mid.Depth(), a.Depth())
	}
}

func TestBetweenSimple(t *testing.T) {
	a, _ := Parse("1.1")
	b, _ := Parse("1.3")
	mid, err := Between(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(a, mid) >= 0 || Compare(mid, b) >= 0 {
		t.Fatalf("Between(%s, %s) = %s not strictly between", a, b, mid)
	}
}

func TestBetweenRepeatedInsertions(t *testing.T) {
	// Repeatedly insert between the first two siblings; ORDPATH must never
	// run out of room or relabel.
	a, _ := Parse("1.1")
	b, _ := Parse("1.3")
	labels := []Label{a, b}
	cur := b
	for i := 0; i < 50; i++ {
		mid, err := Between(a, cur)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if Compare(a, mid) >= 0 || Compare(mid, cur) >= 0 {
			t.Fatalf("iteration %d: %s not between %s and %s", i, mid, a, cur)
		}
		if mid.Depth() != 2 {
			t.Fatalf("iteration %d: depth %d", i, mid.Depth())
		}
		labels = append(labels, mid)
		cur = mid
	}
	// All labels distinct and totally ordered.
	sort.Slice(labels, func(i, j int) bool { return Compare(labels[i], labels[j]) < 0 })
	for i := 0; i+1 < len(labels); i++ {
		if Compare(labels[i], labels[i+1]) >= 0 {
			t.Fatal("duplicate or misordered labels after insertions")
		}
	}
}

func TestBetweenAlternatingSides(t *testing.T) {
	a, _ := Parse("1.1")
	b, _ := Parse("1.3")
	lo, hi := a, b
	for i := 0; i < 40; i++ {
		mid, err := Between(lo, hi)
		if err != nil {
			t.Fatalf("iteration %d (%s, %s): %v", i, lo, hi, err)
		}
		if i%2 == 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
}

func TestBetweenErrors(t *testing.T) {
	a, _ := Parse("1.3")
	b, _ := Parse("1.1")
	if _, err := Between(a, b); err == nil {
		t.Fatal("Between with a >= b accepted")
	}
	if _, err := Between(b, b); err == nil {
		t.Fatal("Between with equal labels accepted")
	}
	root := Root()
	if _, err := Between(root, root.FirstChild()); err == nil {
		t.Fatal("Between ancestor/descendant accepted")
	}
}

func TestKeyEncodingPreservesOrder(t *testing.T) {
	labels := []string{"1", "1.1", "1.1.1", "1.2.1", "1.3", "1.15", "3", "3.1"}
	for i := 0; i+1 < len(labels); i++ {
		a, _ := Parse(labels[i])
		b, _ := Parse(labels[i+1])
		if Compare(a, b) >= 0 {
			t.Fatalf("test fixture misordered at %d", i)
		}
		if bytes.Compare(a.Key(), b.Key()) >= 0 {
			t.Errorf("Key order broken: %s !< %s", a, b)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "1.3.5", "1.2.0.1"} {
		l, _ := Parse(s)
		back, err := FromKey(l.Key())
		if err != nil || !Equal(back, l) {
			t.Fatalf("key round trip %s -> %s (%v)", l, back, err)
		}
	}
	if _, err := FromKey([]byte{0xde, 0xad}); err == nil {
		t.Fatal("FromKey on garbage should fail")
	}
}

func TestPropertyRandomTreeDocumentOrder(t *testing.T) {
	// Build a random tree via FirstChild/NextSibling/Between; pre-order
	// traversal order must equal label sort order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		type node struct {
			label    Label
			children []*node
		}
		root := &node{label: Root()}
		all := []*node{root}
		for i := 0; i < 60; i++ {
			p := all[r.Intn(len(all))]
			var l Label
			if len(p.children) == 0 {
				l = p.label.FirstChild()
			} else {
				switch r.Intn(3) {
				case 0:
					l = p.children[len(p.children)-1].label.NextSibling()
				case 1:
					l = p.children[len(p.children)-1].label.NextSibling()
				default:
					if len(p.children) >= 2 {
						m, err := Between(p.children[0].label, p.children[1].label)
						if err != nil {
							return false
						}
						l = m
					} else {
						l = p.children[len(p.children)-1].label.NextSibling()
					}
				}
			}
			n := &node{label: l}
			p.children = append(p.children, n)
			sort.Slice(p.children, func(i, j int) bool {
				return Compare(p.children[i].label, p.children[j].label) < 0
			})
			all = append(all, n)
		}
		// Pre-order walk.
		var pre []Label
		var walk func(n *node)
		walk = func(n *node) {
			pre = append(pre, n.label)
			for _, c := range n.children {
				walk(c)
			}
		}
		walk(root)
		// Sorted labels must equal pre-order.
		sorted := make([]Label, len(pre))
		copy(sorted, pre)
		sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
		for i := range pre {
			if !Equal(pre[i], sorted[i]) {
				return false
			}
		}
		// Byte keys agree with label order.
		for i := 0; i+1 < len(sorted); i++ {
			if bytes.Compare(sorted[i].Key(), sorted[i+1].Key()) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
