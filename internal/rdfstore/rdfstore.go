// Package rdfstore implements the RDF triple model of the paper's DB2-RDF
// row: triples are dictionary-encoded and stored in three permutation
// indexes — SPO ("direct primary": indexed by subject), OPS ("reverse
// primary": indexed by object), and POS (predicate-first, serving
// predicate-bound patterns). Each triple-pattern shape picks the
// permutation that turns it into a prefix scan, and basic graph patterns
// (conjunctive SPARQL WHERE clauses) are evaluated by binding-propagating
// joins.
//
// Layout on the integrated backend (per graph name):
//
//	rdf:<g>:dict    term -> id           (dictionary)
//	rdf:<g>:rdict   id -> term           (reverse dictionary)
//	rdf:<g>:spo     keyenc(s,p,o) -> ""  (direct primary)
//	rdf:<g>:ops     keyenc(o,p,s) -> ""  (reverse primary)
//	rdf:<g>:pos     keyenc(p,o,s) -> ""
package rdfstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/keyenc"
	"repro/internal/mmvalue"
)

// Triple is one (subject, predicate, object) statement. Terms are strings:
// IRIs, blank-node labels, or literals — the store does not interpret them
// beyond identity.
type Triple struct {
	S, P, O string
}

// Errors.
var ErrBadPattern = errors.New("rdfstore: invalid pattern")

// Store provides triple operations within engine transactions.
type Store struct {
	e engine.Sizer
}

// New returns an RDF store over the engine.
func New(e engine.Sizer) *Store { return &Store{e: e} }

func dictKS(g string) string  { return "rdf:" + g + ":dict" }
func rdictKS(g string) string { return "rdf:" + g + ":rdict" }
func spoKS(g string) string   { return "rdf:" + g + ":spo" }
func opsKS(g string) string   { return "rdf:" + g + ":ops" }
func posKS(g string) string   { return "rdf:" + g + ":pos" }

// Keyspaces returns every engine keyspace backing graph g (dictionary, both
// directions of it, and the three triple permutations). Consumers tracking
// data versions of an RDF graph — e.g. core's result cache — must watch all
// of them, since any triple write touches the permutations and may touch the
// dictionaries.
func Keyspaces(g string) []string {
	return []string{dictKS(g), rdictKS(g), spoKS(g), opsKS(g), posKS(g)}
}

func idKey(id uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return b[:]
}

// termID returns (allocating if needed) the dictionary id of a term.
func (s *Store) termID(tx engine.Tx, g, term string, create bool) (uint64, bool, error) {
	raw, ok, err := tx.Get(dictKS(g), []byte(term))
	if err != nil {
		return 0, false, err
	}
	if ok {
		return binary.BigEndian.Uint64(raw), true, nil
	}
	if !create {
		return 0, false, nil
	}
	// Allocate the next id from a counter key; the X lock taken by the
	// read-modify-write serializes concurrent allocators.
	var id uint64 = 1
	if cur, ok, err := tx.Get(dictKS(g), []byte("\x00seq")); err != nil {
		return 0, false, err
	} else if ok {
		id = binary.BigEndian.Uint64(cur) + 1
	}
	if err := tx.Put(dictKS(g), []byte("\x00seq"), idKey(id)); err != nil {
		return 0, false, err
	}
	if err := tx.Put(dictKS(g), []byte(term), idKey(id)); err != nil {
		return 0, false, err
	}
	if err := tx.Put(rdictKS(g), idKey(id), []byte(term)); err != nil {
		return 0, false, err
	}
	return id, true, nil
}

func (s *Store) term(tx engine.Tx, g string, id uint64) (string, error) {
	raw, ok, err := tx.Get(rdictKS(g), idKey(id))
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("rdfstore: dangling id %d", id)
	}
	return string(raw), nil
}

func tripleKey(a, b, c uint64) []byte {
	k := keyenc.AppendInt(nil, int64(a))
	k = keyenc.AppendInt(k, int64(b))
	return keyenc.AppendInt(k, int64(c))
}

// Insert adds a triple (idempotent).
func (s *Store) Insert(tx engine.Tx, g string, t Triple) error {
	si, _, err := s.termID(tx, g, t.S, true)
	if err != nil {
		return err
	}
	pi, _, err := s.termID(tx, g, t.P, true)
	if err != nil {
		return err
	}
	oi, _, err := s.termID(tx, g, t.O, true)
	if err != nil {
		return err
	}
	if err := tx.Put(spoKS(g), tripleKey(si, pi, oi), nil); err != nil {
		return err
	}
	if err := tx.Put(opsKS(g), tripleKey(oi, pi, si), nil); err != nil {
		return err
	}
	return tx.Put(posKS(g), tripleKey(pi, oi, si), nil)
}

// Delete removes a triple, reporting whether it was present.
func (s *Store) Delete(tx engine.Tx, g string, t Triple) (bool, error) {
	si, ok, err := s.termID(tx, g, t.S, false)
	if err != nil || !ok {
		return false, err
	}
	pi, ok, err := s.termID(tx, g, t.P, false)
	if err != nil || !ok {
		return false, err
	}
	oi, ok, err := s.termID(tx, g, t.O, false)
	if err != nil || !ok {
		return false, err
	}
	if _, present, err := tx.Get(spoKS(g), tripleKey(si, pi, oi)); err != nil || !present {
		return false, err
	}
	if err := tx.Delete(spoKS(g), tripleKey(si, pi, oi)); err != nil {
		return false, err
	}
	if err := tx.Delete(opsKS(g), tripleKey(oi, pi, si)); err != nil {
		return false, err
	}
	return true, tx.Delete(posKS(g), tripleKey(pi, oi, si))
}

// Count returns the number of triples in the graph.
func (s *Store) Count(g string) int { return s.e.KeyspaceLen(spoKS(g)) }

// Pattern is a triple pattern; empty strings are wildcards (variables).
type Pattern struct {
	S, P, O string
}

// permutation describes how one index orders (first, second, third) relative
// to (s, p, o).
type permutation struct {
	ks      func(string) string
	extract func(a, b, c uint64) Triple2 // map scan order back to s,p,o ids
	order   [3]rune                      // which of s/p/o sits at each position
}

// Triple2 is an id-space triple.
type Triple2 struct{ S, P, O uint64 }

// Match returns all triples matching the pattern, choosing the permutation
// index that maximizes the bound prefix:
//
//	S bound (any)   -> SPO (direct primary)
//	O bound, S free -> OPS (reverse primary)
//	P bound only    -> POS
//	nothing bound   -> SPO full scan
func (s *Store) Match(tx engine.Tx, g string, pat Pattern) ([]Triple, error) {
	perm, bound, err := s.chooseIndex(tx, g, pat)
	if err != nil {
		return nil, err
	}
	if perm == "" {
		// A bound term is absent from the dictionary: no matches.
		return nil, nil
	}
	var lo, hi []byte
	for _, id := range bound {
		lo = keyenc.AppendInt(lo, int64(id))
	}
	if len(bound) > 0 {
		hi = keyenc.AppendMax(append([]byte{}, lo...))
	}
	var ids []Triple2
	err = tx.Scan(permKeyspace(g, perm), lo, hi, func(k, _ []byte) bool {
		vals, derr := keyenc.Decode(k)
		if derr != nil || len(vals) != 3 {
			err = fmt.Errorf("rdfstore: corrupt triple key")
			return false
		}
		a, b, c := uint64(vals[0].AsInt()), uint64(vals[1].AsInt()), uint64(vals[2].AsInt())
		ids = append(ids, permTriple(perm, a, b, c))
		return true
	})
	if err != nil {
		return nil, err
	}
	// Post-filter components the prefix scan could not pin, then decode.
	var out []Triple
	for _, t2 := range ids {
		trp, err := s.decode(tx, g, t2)
		if err != nil {
			return nil, err
		}
		if pat.S != "" && trp.S != pat.S {
			continue
		}
		if pat.P != "" && trp.P != pat.P {
			continue
		}
		if pat.O != "" && trp.O != pat.O {
			continue
		}
		out = append(out, trp)
	}
	return out, nil
}

func permKeyspace(g, perm string) string {
	switch perm {
	case "spo":
		return spoKS(g)
	case "ops":
		return opsKS(g)
	default:
		return posKS(g)
	}
}

func permTriple(perm string, a, b, c uint64) Triple2 {
	switch perm {
	case "spo":
		return Triple2{S: a, P: b, O: c}
	case "ops":
		return Triple2{O: a, P: b, S: c}
	default: // pos
		return Triple2{P: a, O: b, S: c}
	}
}

// chooseIndex resolves the bound terms of the pattern to ids and picks the
// permutation with the longest bound prefix. Empty perm means a bound term
// is unknown (no results possible).
func (s *Store) chooseIndex(tx engine.Tx, g string, pat Pattern) (string, []uint64, error) {
	resolve := func(term string) (uint64, bool, error) {
		if term == "" {
			return 0, true, nil // wildcard
		}
		id, ok, err := s.termID(tx, g, term, false)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return 0, false, nil
		}
		return id, true, nil
	}
	si, sOK, err := resolve(pat.S)
	if err != nil {
		return "", nil, err
	}
	pi, pOK, err := resolve(pat.P)
	if err != nil {
		return "", nil, err
	}
	oi, oOK, err := resolve(pat.O)
	if err != nil {
		return "", nil, err
	}
	if !sOK || !pOK || !oOK {
		return "", nil, nil
	}
	switch {
	case pat.S != "" && pat.P != "" && pat.O != "":
		return "spo", []uint64{si, pi, oi}, nil
	case pat.S != "" && pat.P != "":
		return "spo", []uint64{si, pi}, nil
	case pat.S != "":
		return "spo", []uint64{si}, nil
	case pat.O != "" && pat.P != "":
		return "ops", []uint64{oi, pi}, nil
	case pat.O != "":
		return "ops", []uint64{oi}, nil
	case pat.P != "":
		return "pos", []uint64{pi}, nil
	default:
		return "spo", nil, nil
	}
}

// IndexFor exposes the permutation choice (for the E16 experiment report).
func IndexFor(pat Pattern) string {
	switch {
	case pat.S != "":
		return "spo (direct primary)"
	case pat.O != "":
		return "ops (reverse primary)"
	case pat.P != "":
		return "pos"
	default:
		return "spo full scan"
	}
}

func (s *Store) decode(tx engine.Tx, g string, t Triple2) (Triple, error) {
	sub, err := s.term(tx, g, t.S)
	if err != nil {
		return Triple{}, err
	}
	pred, err := s.term(tx, g, t.P)
	if err != nil {
		return Triple{}, err
	}
	obj, err := s.term(tx, g, t.O)
	if err != nil {
		return Triple{}, err
	}
	return Triple{S: sub, P: pred, O: obj}, nil
}

// --- Basic graph patterns (SPARQL-subset WHERE evaluation) ---

// PatternVar marks a variable position in a BGP pattern (e.g. "?x").
func isVar(term string) bool { return len(term) > 0 && term[0] == '?' }

// BGPPattern is a triple pattern whose positions may be variables ("?x") or
// constant terms.
type BGPPattern struct {
	S, P, O string
}

// Binding maps variable names (with '?') to terms.
type Binding map[string]string

// MatchBGP evaluates a conjunctive basic graph pattern, returning all
// variable bindings, via binding-propagating nested-loop join in pattern
// order.
func (s *Store) MatchBGP(tx engine.Tx, g string, patterns []BGPPattern) ([]Binding, error) {
	bindings := []Binding{{}}
	for _, pat := range patterns {
		var next []Binding
		for _, b := range bindings {
			concrete := Pattern{
				S: resolveTerm(pat.S, b),
				P: resolveTerm(pat.P, b),
				O: resolveTerm(pat.O, b),
			}
			matches, err := s.Match(tx, g, concrete)
			if err != nil {
				return nil, err
			}
			for _, m := range matches {
				nb := extend(b, pat, m)
				if nb != nil {
					next = append(next, nb)
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}
	return bindings, nil
}

func resolveTerm(term string, b Binding) string {
	if isVar(term) {
		if v, ok := b[term]; ok {
			return v
		}
		return ""
	}
	return term
}

func extend(b Binding, pat BGPPattern, m Triple) Binding {
	nb := Binding{}
	for k, v := range b {
		nb[k] = v
	}
	assign := func(term, val string) bool {
		if !isVar(term) {
			return true
		}
		if cur, ok := nb[term]; ok {
			return cur == val
		}
		nb[term] = val
		return true
	}
	if !assign(pat.S, m.S) || !assign(pat.P, m.P) || !assign(pat.O, m.O) {
		return nil
	}
	return nb
}

// Terms returns the dictionary size (distinct terms).
func (s *Store) Terms(g string) int { return s.e.KeyspaceLen(rdictKS(g)) }

// All returns every triple in the graph (SPO order).
func (s *Store) All(tx engine.Tx, g string) ([]Triple, error) {
	return s.Match(tx, g, Pattern{})
}

// FromValue ingests an mmvalue object as triples about a subject —
// the paper's "model evolution" direction document→RDF (each scalar leaf
// becomes subject —path→ value).
func (s *Store) FromValue(tx engine.Tx, g, subject string, v mmvalue.Value) error {
	for _, entry := range mmvalue.FlattenPaths(v) {
		t := Triple{S: subject, P: entry.Path, O: entry.Leaf.String()}
		if err := s.Insert(tx, g, t); err != nil {
			return err
		}
	}
	return nil
}
