package rdfstore

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/mmvalue"
)

func setup(t *testing.T) (*engine.Engine, *Store) {
	t.Helper()
	e, err := engine.Open(engine.Options{Durability: engine.Ephemeral})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, New(e)
}

func seed(t *testing.T, e *engine.Engine, s *Store) {
	t.Helper()
	triples := []Triple{
		{"<mary>", "<knows>", "<john>"},
		{"<anne>", "<knows>", "<mary>"},
		{"<mary>", "<name>", `"Mary"`},
		{"<john>", "<name>", `"John"`},
		{"<anne>", "<name>", `"Anne"`},
		{"<mary>", "<credit>", `"5000"`},
		{"<john>", "<credit>", `"3000"`},
	}
	if err := e.Update(func(tx *engine.Txn) error {
		for _, tr := range triples {
			if err := s.Insert(tx, "g", tr); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndCount(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	if s.Count("g") != 7 {
		t.Fatalf("Count = %d", s.Count("g"))
	}
	if s.Terms("g") != 11 { // 3 subjects + 3 predicates + 5 distinct objects... counted below
		// subjects: mary, anne, john; predicates: knows, name, credit;
		// objects: john, mary, "Mary","John","Anne","5000","3000" — john/mary shared.
		// distinct terms = mary, john, anne, knows, name, credit, "Mary","John","Anne","5000","3000" = 11
		t.Fatalf("Terms = %d", s.Terms("g"))
	}
	// Idempotent insert.
	e.Update(func(tx *engine.Txn) error {
		return s.Insert(tx, "g", Triple{"<mary>", "<knows>", "<john>"})
	})
	if s.Count("g") != 7 {
		t.Fatalf("Count after duplicate = %d", s.Count("g"))
	}
}

func TestMatchPatternsAllShapes(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	e.View(func(tx *engine.Txn) error {
		// S bound (direct primary).
		got, err := s.Match(tx, "g", Pattern{S: "<mary>"})
		if err != nil || len(got) != 3 {
			t.Fatalf("S-bound = %v, %v", got, err)
		}
		// S+P bound.
		got, _ = s.Match(tx, "g", Pattern{S: "<mary>", P: "<knows>"})
		if len(got) != 1 || got[0].O != "<john>" {
			t.Fatalf("SP-bound = %v", got)
		}
		// Exact triple.
		got, _ = s.Match(tx, "g", Pattern{S: "<mary>", P: "<knows>", O: "<john>"})
		if len(got) != 1 {
			t.Fatalf("SPO-bound = %v", got)
		}
		// O bound (reverse primary).
		got, _ = s.Match(tx, "g", Pattern{O: "<mary>"})
		if len(got) != 1 || got[0].S != "<anne>" {
			t.Fatalf("O-bound = %v", got)
		}
		// P bound (POS).
		got, _ = s.Match(tx, "g", Pattern{P: "<name>"})
		if len(got) != 3 {
			t.Fatalf("P-bound = %v", got)
		}
		// O+P bound.
		got, _ = s.Match(tx, "g", Pattern{P: "<knows>", O: "<john>"})
		if len(got) != 1 || got[0].S != "<mary>" {
			t.Fatalf("PO-bound = %v", got)
		}
		// S+O bound, P free (scan with post-filter).
		got, _ = s.Match(tx, "g", Pattern{S: "<mary>", O: "<john>"})
		if len(got) != 1 || got[0].P != "<knows>" {
			t.Fatalf("SO-bound = %v", got)
		}
		// Full scan.
		got, _ = s.Match(tx, "g", Pattern{})
		if len(got) != 7 {
			t.Fatalf("full scan = %d", len(got))
		}
		// Unknown term: no matches, no error.
		got, err = s.Match(tx, "g", Pattern{S: "<ghost>"})
		if err != nil || len(got) != 0 {
			t.Fatalf("unknown term = %v, %v", got, err)
		}
		return nil
	})
}

func TestDelete(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	e.Update(func(tx *engine.Txn) error {
		ok, err := s.Delete(tx, "g", Triple{"<mary>", "<knows>", "<john>"})
		if !ok || err != nil {
			t.Fatalf("Delete = %v, %v", ok, err)
		}
		ok, _ = s.Delete(tx, "g", Triple{"<mary>", "<knows>", "<john>"})
		if ok {
			t.Fatal("double delete reported true")
		}
		ok, _ = s.Delete(tx, "g", Triple{"<nobody>", "<knows>", "<john>"})
		if ok {
			t.Fatal("deleting unknown triple reported true")
		}
		return nil
	})
	if s.Count("g") != 6 {
		t.Fatalf("Count after delete = %d", s.Count("g"))
	}
	// All permutations agree.
	e.View(func(tx *engine.Txn) error {
		if got, _ := s.Match(tx, "g", Pattern{O: "<john>"}); len(got) != 0 {
			t.Fatalf("OPS permutation stale: %v", got)
		}
		if got, _ := s.Match(tx, "g", Pattern{P: "<knows>"}); len(got) != 1 {
			t.Fatalf("POS permutation stale: %v", got)
		}
		return nil
	})
}

// TestBGPFriendQuery runs the SPARQL-style query of the paper's running
// example: names of people known by someone with credit 5000.
func TestBGPFriendQuery(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	e.View(func(tx *engine.Txn) error {
		bindings, err := s.MatchBGP(tx, "g", []BGPPattern{
			{S: "?x", P: "<credit>", O: `"5000"`},
			{S: "?x", P: "<knows>", O: "?y"},
			{S: "?y", P: "<name>", O: "?name"},
		})
		if err != nil || len(bindings) != 1 {
			t.Fatalf("BGP = %v, %v", bindings, err)
		}
		if bindings[0]["?name"] != `"John"` || bindings[0]["?x"] != "<mary>" {
			t.Fatalf("binding = %v", bindings[0])
		}
		return nil
	})
}

func TestBGPSharedVariableConsistency(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	e.View(func(tx *engine.Txn) error {
		// ?x knows ?x — nobody knows themselves.
		bindings, _ := s.MatchBGP(tx, "g", []BGPPattern{
			{S: "?x", P: "<knows>", O: "?x"},
		})
		if len(bindings) != 0 {
			t.Fatalf("self-knows = %v", bindings)
		}
		// All (?s, name, ?n) pairs.
		bindings, _ = s.MatchBGP(tx, "g", []BGPPattern{
			{S: "?s", P: "<name>", O: "?n"},
		})
		if len(bindings) != 3 {
			t.Fatalf("names = %v", bindings)
		}
		var names []string
		for _, b := range bindings {
			names = append(names, b["?n"])
		}
		sort.Strings(names)
		if !reflect.DeepEqual(names, []string{`"Anne"`, `"John"`, `"Mary"`}) {
			t.Fatalf("names = %v", names)
		}
		return nil
	})
}

func TestBGPEmptyResultShortCircuits(t *testing.T) {
	e, s := setup(t)
	seed(t, e, s)
	e.View(func(tx *engine.Txn) error {
		bindings, err := s.MatchBGP(tx, "g", []BGPPattern{
			{S: "?x", P: "<nothere>", O: "?y"},
			{S: "?y", P: "<name>", O: "?n"},
		})
		if err != nil || len(bindings) != 0 {
			t.Fatalf("BGP = %v, %v", bindings, err)
		}
		return nil
	})
}

func TestIndexFor(t *testing.T) {
	cases := map[string]Pattern{
		"spo (direct primary)":  {S: "<a>"},
		"ops (reverse primary)": {O: "<b>"},
		"pos":                   {P: "<p>"},
		"spo full scan":         {},
	}
	for want, pat := range cases {
		if got := IndexFor(pat); got != want {
			t.Errorf("IndexFor(%+v) = %s, want %s", pat, got, want)
		}
	}
}

func TestFromValue(t *testing.T) {
	e, s := setup(t)
	doc := mmvalue.MustParseJSON(`{"name":"Mary","orders":[{"price":66}]}`)
	e.Update(func(tx *engine.Txn) error { return s.FromValue(tx, "g", "<cust1>", doc) })
	e.View(func(tx *engine.Txn) error {
		got, _ := s.Match(tx, "g", Pattern{S: "<cust1>"})
		if len(got) != 2 {
			t.Fatalf("FromValue triples = %v", got)
		}
		got, _ = s.Match(tx, "g", Pattern{S: "<cust1>", P: "orders[0].price"})
		if len(got) != 1 || got[0].O != "66" {
			t.Fatalf("price triple = %v", got)
		}
		return nil
	})
}

func TestGraphIsolation(t *testing.T) {
	e, s := setup(t)
	e.Update(func(tx *engine.Txn) error {
		s.Insert(tx, "g1", Triple{"<a>", "<p>", "<b>"})
		return s.Insert(tx, "g2", Triple{"<c>", "<p>", "<d>"})
	})
	e.View(func(tx *engine.Txn) error {
		got, _ := s.Match(tx, "g1", Pattern{P: "<p>"})
		if len(got) != 1 || got[0].S != "<a>" {
			t.Fatalf("g1 = %v", got)
		}
		return nil
	})
}

func TestLargeGraphPrefixScanEfficiency(t *testing.T) {
	// Not a benchmark, just a correctness check at moderate scale.
	e, s := setup(t)
	err := e.Update(func(tx *engine.Txn) error {
		for i := 0; i < 500; i++ {
			if err := s.Insert(tx, "big", Triple{
				S: fmt.Sprintf("<s%d>", i%50),
				P: fmt.Sprintf("<p%d>", i%5),
				O: fmt.Sprintf("<o%d>", i),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e.View(func(tx *engine.Txn) error {
		got, _ := s.Match(tx, "big", Pattern{S: "<s7>"})
		if len(got) != 10 {
			t.Fatalf("S-bound count = %d", len(got))
		}
		got, _ = s.Match(tx, "big", Pattern{P: "<p3>"})
		if len(got) != 100 {
			t.Fatalf("P-bound count = %d", len(got))
		}
		return nil
	})
}
