package csr

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitmapidx"
)

// ErrNoSuchPath mirrors the graph store's sentinel; the store wraps it back
// into its own error space so callers see one identity either way.
var ErrNoSuchPath = errors.New("csr: no path")

// parallelFrontier is the frontier size at which expansion fans out across
// workers. Below it the chunking overhead costs more than the scan.
const parallelFrontier = 256

// forNeighbors walks v's adjacency slots for one direction in probe order:
// the out half, then (for Any) the in half with self-loop slots skipped. A
// self-loop of v is the one edge present in both incident lists — in the in
// half it is exactly the slot whose far vertex is v itself (to == v by
// membership, from == far == v) — so skipping it reproduces the probe
// path's dedup-by-edge-key. sel filters by interned label id.
func (g *Graph) forNeighbors(v int32, dir Dir, sel int32, fn func(far int32)) {
	if sel == matchNone || v >= int32(g.realV) {
		return
	}
	if dir == Out || dir == Any {
		for i := g.out.off[v]; i < g.out.off[v+1]; i++ {
			if sel != matchAll && g.out.label[i] != sel {
				continue
			}
			fn(g.out.adj[i])
		}
	}
	if dir == In || dir == Any {
		for i := g.in.off[v]; i < g.in.off[v+1]; i++ {
			if sel != matchAll && g.in.label[i] != sel {
				continue
			}
			far := g.in.adj[i]
			if dir == Any && far == v {
				continue
			}
			fn(far)
		}
	}
}

// NeighborKeys expands one step from vertex key v, returning the far-side
// vertex keys in the probe path's order (edge-key order per direction, out
// then in for Any, self-loops reported once).
func (g *Graph) NeighborKeys(v string, dir Dir, label string) []string {
	id, ok := g.idOf[v]
	if !ok || id >= int32(g.realV) {
		return nil
	}
	var out []string
	g.forNeighbors(id, dir, g.labelSel(label), func(far int32) {
		out = append(out, g.keys[far])
	})
	return out
}

// expand computes one BFS level: every unvisited far vertex reachable from
// the frontier, in the frontier's own order, marking visited as it goes.
// The returned slice is both the next frontier and (at depth >= min) the
// output order — identical to the probe path's serial loop.
//
// For large frontiers the slot walks fan out across workers: the frontier
// is split into contiguous chunks, each worker collects its chunk's
// candidates filtered against the visited set (read-only and stable for
// the whole phase — no candidate is marked until every worker returns),
// and a serial merge in chunk order performs the authoritative
// check-mark-append. Cross-chunk duplicates survive the worker prefilter
// but die at the merge, so the result is byte-identical to the serial walk.
func (g *Graph) expand(frontier []int32, dir Dir, sel int32, visited *bitmapidx.Bitset, workers int) []int32 {
	if workers <= 1 || len(frontier) < parallelFrontier {
		var next []int32
		for _, v := range frontier {
			g.forNeighbors(v, dir, sel, func(far int32) {
				if visited.Has(int(far)) {
					return
				}
				visited.Set(int(far))
				next = append(next, far)
			})
		}
		return next
	}
	if workers > len(frontier) {
		workers = len(frontier)
	}
	chunks := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(frontier) * w / workers
		hi := len(frontier) * (w + 1) / workers
		wg.Add(1)
		go func(w int, part []int32) {
			defer wg.Done()
			var cand []int32
			for _, v := range part {
				g.forNeighbors(v, dir, sel, func(far int32) {
					if !visited.Has(int(far)) {
						cand = append(cand, far)
					}
				})
			}
			chunks[w] = cand
		}(w, frontier[lo:hi])
	}
	wg.Wait()
	var next []int32
	for _, cand := range chunks {
		for _, far := range cand {
			if visited.Has(int(far)) {
				continue
			}
			visited.Set(int(far))
			next = append(next, far)
		}
	}
	return next
}

// Traverse performs the `FOR v IN min..max <dir> start` BFS expansion over
// the CSR arrays, returning reached vertex keys in the probe path's exact
// order: each vertex once at its first-reach depth, depths min..max, the
// start included only when min == 0 and the start vertex exists.
func (g *Graph) Traverse(start string, min, max int, dir Dir, label string, workers int) ([]string, error) {
	if min < 0 || max < min {
		return nil, fmt.Errorf("csr: bad depth range %d..%d", min, max)
	}
	id, ok := g.idOf[start]
	if !ok || id >= int32(g.realV) {
		return nil, nil
	}
	sel := g.labelSel(label)
	visited := bitmapidx.NewBitset()
	visited.Set(int(id))
	frontier := []int32{id}
	var out []string
	if min == 0 {
		out = append(out, start)
	}
	for depth := 1; depth <= max && len(frontier) > 0; depth++ {
		frontier = g.expand(frontier, dir, sel, visited, workers)
		if depth >= min {
			for _, v := range frontier {
				out = append(out, g.keys[v])
			}
		}
	}
	return out, nil
}

// ShortestPath returns the vertex keys of an unweighted shortest path from
// start to goal (inclusive), or ErrNoSuchPath. The BFS is serial: parent
// pointers follow the probe path's discovery order exactly, so tie-breaking
// between equal-length paths is identical, and the early exit on goal
// discovery usually stops mid-level anyway.
func (g *Graph) ShortestPath(start, goal string, dir Dir, label string) ([]string, error) {
	sid, ok := g.idOf[start]
	if !ok || sid >= int32(g.realV) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoSuchPath, start, goal)
	}
	if start == goal {
		return []string{start}, nil
	}
	gid, ok := g.idOf[goal]
	if !ok || gid >= int32(g.realV) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoSuchPath, start, goal)
	}
	sel := g.labelSel(label)
	visited := bitmapidx.NewBitset()
	visited.Set(int(sid))
	parent := map[int32]int32{}
	frontier := []int32{sid}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			found := false
			g.forNeighbors(v, dir, sel, func(far int32) {
				if visited.Has(int(far)) {
					return
				}
				visited.Set(int(far))
				parent[far] = v
				if far == gid {
					found = true
				}
				next = append(next, far)
			})
			if found {
				return g.buildPath(parent, sid, gid), nil
			}
		}
		frontier = next
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoSuchPath, start, goal)
}

// buildPath walks parent pointers from goal back to start and reverses.
func (g *Graph) buildPath(parent map[int32]int32, start, goal int32) []string {
	rev := []int32{goal}
	for v := goal; v != start; {
		v = parent[v]
		rev = append(rev, v)
	}
	out := make([]string, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = g.keys[v]
	}
	return out
}
