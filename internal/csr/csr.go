// Package csr builds compact immutable CSR (compressed sparse row)
// adjacency snapshots of a property graph and runs lock-free traversals
// over them.
//
// The graph store's probe path answers every hop with per-edge B+tree
// probes: one edge-index range scan per frontier vertex plus a full edge
// document decode per incident edge. A depth-2/3 traversal over a power-law
// graph pays thousands of probes per frontier. A CSR snapshot pays that
// cost once — one ordered scan of each graph keyspace under an MVCC
// snapshot — and turns every subsequent hop into int32 array walks:
//
//	keys    []string   vertex id -> key   (ascending key order)
//	off/adj [][]int32  two halves (out, in), per-vertex slots in
//	                   edge-key order, far-vertex id + interned label id
//
// Because the source scans run against a copy-on-write snapshot, the build
// observes one commit boundary and never blocks (or is blocked by) writers.
// A built Graph is immutable and safe for any number of concurrent readers.
//
// Validity: the Cache keys each graph's CSR by the engine's keyspace-drop
// epoch plus the data-version vector of the four graph keyspaces, both
// captured at the snapshot's cut (engine.Txn.SnapshotVersionsFor). Equal
// tokens imply byte-identical keyspace content, so an unchanged graph
// rebuilds zero times no matter how many queries traverse it.
//
// Equivalence: slot order reproduces the probe path exactly. The edge-index
// keyspaces sort by keyenc(vertex, edgeKey), and vertex ids are assigned in
// the same keyenc order, so walking a vertex's slots visits edges in the
// identical order incidentEdgeKeys yields them. ANY-direction expansion
// walks the out half then the in half and skips self-loops in the in half —
// the one edge class present in both incident lists.
package csr

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/engine"
	"repro/internal/keyenc"
)

// Reserved edge fields, mirroring the graph store's document layout.
const (
	fromField  = "_from"
	toField    = "_to"
	labelField = "_label"
)

// Dir selects traversal direction, matching the graph store's
// Outbound/Inbound/Any (the csr package cannot import graphstore — the
// store owns the cache — so the constants are duplicated by value).
type Dir int

// Traversal directions.
const (
	Out Dir = iota
	In
	Any
)

// Spec names the four engine keyspaces one graph lives in.
type Spec struct {
	Vertex string // keyenc(vkey) -> vertex doc
	Edge   string // keyenc(ekey) -> edge doc
	Out    string // keyenc(from, ekey) -> ""
	In     string // keyenc(to, ekey) -> ""
}

// half is one direction of the CSR: vertex v's slots are
// adj[off[v]:off[v+1]], in edge-key order.
type half struct {
	off   []int32 // len = vertex count + 1
	adj   []int32 // far vertex id per slot
	label []int32 // interned label id per slot (0 = unlabeled)
}

// Graph is an immutable CSR adjacency snapshot of one property graph.
type Graph struct {
	// keys maps vertex id -> vertex key. Ids 0..realV-1 are vertices
	// present in the vertex keyspace, assigned in ascending keyenc order;
	// ids >= realV are phantom endpoints referenced by an edge document
	// but absent from the vertex keyspace (impossible through the graph
	// store API, which enforces referential integrity, but tolerated here
	// so corrupt data degrades instead of panicking). Phantoms have no
	// adjacency slots.
	keys  []string
	idOf  map[string]int32
	realV int

	labelOf map[string]int32 // label -> id; "" is always id 0

	out, in half

	edges int // edge documents indexed (slots per half)
	bytes int // approximate resident size, for cache accounting
}

// Label-selector sentinels for the internal neighbor walks: matchAll when
// no label filter is given, matchNone when the filter names a label no edge
// carries (the BFS then runs against empty adjacency, like the probe path
// filtering every edge out).
const (
	matchAll  int32 = -1
	matchNone int32 = -2
)

// labelSel resolves a label filter to a selector for neighbor walks.
func (g *Graph) labelSel(label string) int32 {
	if label == "" {
		return matchAll
	}
	if id, ok := g.labelOf[label]; ok {
		return id
	}
	return matchNone
}

// VertexCount returns the number of vertices present in the vertex
// keyspace at the snapshot.
func (g *Graph) VertexCount() int { return g.realV }

// EdgeCount returns the number of edge documents indexed.
func (g *Graph) EdgeCount() int { return g.edges }

// Bytes approximates the resident size of the CSR arrays and dictionary.
func (g *Graph) Bytes() int { return g.bytes }

// edgeInfo is the decoded endpoint/label triple of one edge document.
type edgeInfo struct {
	from, to int32
	label    int32
}

// Build constructs the CSR snapshot of one graph by scanning its four
// keyspaces through tx — expected (but not required) to be a lock-free
// snapshot transaction, so the build observes one commit boundary. Cost is
// one ordered scan per keyspace plus one decode per edge document; after
// that, traversals never touch the B+trees again.
func Build(tx engine.Tx, spec Spec) (*Graph, error) {
	g := &Graph{
		idOf:    map[string]int32{},
		labelOf: map[string]int32{"": 0},
	}
	// Pass 1: vertex dictionary, in ascending keyenc order — the same
	// order the edge-index scans group by, which is what lets pass 3 fill
	// slots in one streaming append.
	var decErr error
	err := tx.Scan(spec.Vertex, nil, nil, func(k, _ []byte) bool {
		parts, err := keyenc.Decode(k)
		if err != nil || len(parts) != 1 {
			decErr = fmt.Errorf("csr: corrupt vertex key: %w", err)
			return false
		}
		key := parts[0].AsString()
		g.idOf[key] = int32(len(g.keys))
		g.keys = append(g.keys, key)
		return true
	})
	if err != nil {
		return nil, err
	}
	if decErr != nil {
		return nil, decErr
	}
	g.realV = len(g.keys)

	// Pass 2: edge documents. Each decodes once; endpoints intern phantom
	// ids when the vertex is missing, labels intern into the dictionary.
	info := map[string]edgeInfo{}
	err = tx.Scan(spec.Edge, nil, nil, func(k, v []byte) bool {
		parts, err := keyenc.Decode(k)
		if err != nil || len(parts) != 1 {
			decErr = fmt.Errorf("csr: corrupt edge key: %w", err)
			return false
		}
		doc, err := binenc.Decode(v)
		if err != nil {
			decErr = fmt.Errorf("csr: corrupt edge document: %w", err)
			return false
		}
		ei := edgeInfo{
			from:  g.internVertex(doc.GetOr(fromField).AsString()),
			to:    g.internVertex(doc.GetOr(toField).AsString()),
			label: g.internLabel(doc.GetOr(labelField).AsString()),
		}
		info[parts[0].AsString()] = ei
		g.edges++
		return true
	})
	if err != nil {
		return nil, err
	}
	if decErr != nil {
		return nil, decErr
	}

	// Passes 3 and 4: the edge-index keyspaces, sorted by
	// keyenc(vertex, edgeKey), stream straight into each CSR half. The far
	// side comes from the edge document: _to for the out half, _from for
	// the in half — exactly what the probe path reports per direction.
	if g.out, err = g.buildHalf(tx, spec.Out, info, false); err != nil {
		return nil, err
	}
	if g.in, err = g.buildHalf(tx, spec.In, info, true); err != nil {
		return nil, err
	}

	g.bytes = g.footprint()
	return g, nil
}

// internVertex returns the id of key, interning a phantom id for endpoints
// missing from the vertex keyspace. Empty keys (a corrupt edge document
// with no endpoint field) intern under "" like any other phantom.
func (g *Graph) internVertex(key string) int32 {
	if id, ok := g.idOf[key]; ok {
		return id
	}
	id := int32(len(g.keys))
	g.idOf[key] = id
	g.keys = append(g.keys, key)
	return id
}

// internLabel returns the id of label, interning it on first sight.
func (g *Graph) internLabel(label string) int32 {
	if id, ok := g.labelOf[label]; ok {
		return id
	}
	id := int32(len(g.labelOf))
	g.labelOf[label] = id
	return id
}

// buildHalf streams one edge-index keyspace into a CSR half. Entries arrive
// sorted by (vertex, edgeKey); real vertex ids were assigned in the same
// sort order, so groups arrive in ascending id order and the offsets close
// with a monotonic sweep. Entries whose edge document is missing (a
// dangling index row) are skipped, like the probe path skips them; entries
// whose owning vertex is not in the vertex keyspace are skipped too —
// expansion from a vertex that does not exist is not a state the graph
// store can produce.
func (g *Graph) buildHalf(tx engine.Tx, ks string, info map[string]edgeInfo, inbound bool) (half, error) {
	h := half{off: make([]int32, g.realV+1)}
	if g.edges > 0 {
		h.adj = make([]int32, 0, g.edges)
		h.label = make([]int32, 0, g.edges)
	}
	cur := int32(0)
	var decErr error
	err := tx.Scan(ks, nil, nil, func(k, _ []byte) bool {
		parts, err := keyenc.Decode(k)
		if err != nil || len(parts) != 2 {
			decErr = fmt.Errorf("csr: corrupt edge index entry: %w", err)
			return false
		}
		vid, ok := g.idOf[parts[0].AsString()]
		if !ok || vid >= int32(g.realV) {
			return true
		}
		ei, ok := info[parts[1].AsString()]
		if !ok {
			return true
		}
		for cur < vid {
			cur++
			h.off[cur] = int32(len(h.adj))
		}
		far := ei.to
		if inbound {
			far = ei.from
		}
		h.adj = append(h.adj, far)
		h.label = append(h.label, ei.label)
		return true
	})
	if err != nil {
		return half{}, err
	}
	if decErr != nil {
		return half{}, decErr
	}
	for cur < int32(g.realV) {
		cur++
		h.off[cur] = int32(len(h.adj))
	}
	return h, nil
}

// footprint approximates the graph's resident bytes: the two halves' int32
// arrays, the key dictionary's string headers and payloads, and the id map.
func (g *Graph) footprint() int {
	n := 4 * (len(g.out.off) + len(g.out.adj) + len(g.out.label) +
		len(g.in.off) + len(g.in.adj) + len(g.in.label))
	for _, k := range g.keys {
		// String payload plus header, counted twice (dictionary + map key),
		// plus the map's id value and bucket overhead, roughly.
		n += 2*(len(k)+16) + 16
	}
	n += 48 * len(g.labelOf)
	return n
}
