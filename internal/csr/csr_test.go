package csr_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/csr"
	"repro/internal/engine"
	"repro/internal/graphstore"
	"repro/internal/mmvalue"
)

func setup(t *testing.T) (*engine.Engine, *graphstore.Store) {
	t.Helper()
	e, err := engine.Open(engine.Options{Durability: engine.Ephemeral})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e, graphstore.New(e)
}

func mustUpdate(t *testing.T, e *engine.Engine, fn func(tx *engine.Txn) error) {
	t.Helper()
	if err := e.Update(fn); err != nil {
		t.Fatal(err)
	}
}

func spec(g string) csr.Spec {
	return csr.Spec{
		Vertex: graphstore.VertexKeyspace(g),
		Edge:   graphstore.EdgeKeyspace(g),
		Out:    graphstore.OutKeyspace(g),
		In:     graphstore.InKeyspace(g),
	}
}

// seedSocial builds a small social graph:
//
//	alice -follows-> bob -follows-> carol -follows-> dave
//	alice -follows-> carol
//	bob   -likes--> dave
//	eve (isolated), dave -follows-> dave (self-loop)
func seedSocial(t *testing.T, e *engine.Engine, s *graphstore.Store) {
	t.Helper()
	mustUpdate(t, e, func(tx *engine.Txn) error {
		for _, v := range []string{"alice", "bob", "carol", "dave", "eve"} {
			if err := s.PutVertex(tx, "soc", v, docKV("name", v)); err != nil {
				return err
			}
		}
		edges := [][3]string{
			{"alice", "bob", "follows"},
			{"bob", "carol", "follows"},
			{"carol", "dave", "follows"},
			{"alice", "carol", "follows"},
			{"bob", "dave", "likes"},
			{"dave", "dave", "follows"},
		}
		for _, ed := range edges {
			if _, err := s.Connect(tx, "soc", ed[0], ed[1], ed[2], docKV()); err != nil {
				return err
			}
		}
		return nil
	})
}

func buildSoc(t *testing.T, e *engine.Engine) *csr.Graph {
	t.Helper()
	var g *csr.Graph
	if err := e.SnapshotView(func(tx *engine.Txn) error {
		var err error
		g, err = csr.Build(tx, spec("soc"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildCounts(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)
	if g.VertexCount() != 5 {
		t.Fatalf("VertexCount = %d, want 5", g.VertexCount())
	}
	if g.EdgeCount() != 6 {
		t.Fatalf("EdgeCount = %d, want 6", g.EdgeCount())
	}
	if g.Bytes() <= 0 {
		t.Fatalf("Bytes = %d, want > 0", g.Bytes())
	}
}

// TestMatchesProbePath drives the CSR and probe paths through the same
// corpus of (start, depth range, direction, label) traversals and demands
// byte-identical results — the invariant the query router relies on.
func TestMatchesProbePath(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)

	dirs := []struct {
		cd csr.Dir
		gd graphstore.Direction
	}{{csr.Out, graphstore.Outbound}, {csr.In, graphstore.Inbound}, {csr.Any, graphstore.Any}}
	starts := []string{"alice", "bob", "carol", "dave", "eve", "nosuch"}
	ranges := [][2]int{{0, 0}, {0, 1}, {0, 3}, {1, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 5}}
	labels := []string{"", "follows", "likes", "nolabel"}

	for _, d := range dirs {
		for _, start := range starts {
			for _, r := range ranges {
				for _, label := range labels {
					for _, workers := range []int{1, 4} {
						want, werr := s.Traverse(engineView(t, e), "soc", start, r[0], r[1], d.gd, label)
						got, gerr := g.Traverse(start, r[0], r[1], d.cd, label, workers)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("%s %d..%d %v %q: err mismatch probe=%v csr=%v", start, r[0], r[1], d.gd, label, werr, gerr)
						}
						if !sameKeys(want, got) {
							t.Fatalf("%s %d..%d %v %q workers=%d: probe=%v csr=%v", start, r[0], r[1], d.gd, label, workers, want, got)
						}
					}
				}
			}
		}
	}
}

func TestShortestPathMatchesProbe(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)

	cases := [][2]string{
		{"alice", "dave"}, {"alice", "carol"}, {"dave", "alice"},
		{"alice", "eve"}, {"eve", "alice"}, {"alice", "alice"},
		{"nosuch", "alice"}, {"alice", "nosuch"}, {"nosuch", "nosuch"},
	}
	dirs := []struct {
		cd csr.Dir
		gd graphstore.Direction
	}{{csr.Out, graphstore.Outbound}, {csr.In, graphstore.Inbound}, {csr.Any, graphstore.Any}}
	for _, d := range dirs {
		for _, c := range cases {
			want, werr := s.ShortestPath(engineView(t, e), "soc", c[0], c[1], d.gd, "")
			got, gerr := g.ShortestPath(c[0], c[1], d.cd, "")
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%v %v: err mismatch probe=%v csr=%v", c, d.gd, werr, gerr)
			}
			if werr != nil && !errors.Is(gerr, csr.ErrNoSuchPath) {
				t.Fatalf("%v %v: csr err = %v, want ErrNoSuchPath", c, d.gd, gerr)
			}
			if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
				t.Fatalf("%v %v: probe=%v csr=%v", c, d.gd, want, got)
			}
		}
	}
}

func TestNeighborKeysSelfLoopOnce(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)
	got := g.NeighborKeys("dave", csr.Any, "")
	count := 0
	for _, k := range got {
		if k == "dave" {
			count++
		}
	}
	// dave has one self-loop and one inbound edge from carol and one from
	// bob: the loop must be reported exactly once.
	if count != 1 {
		t.Fatalf("self-loop reported %d times in %v, want 1", count, got)
	}
}

func TestNeighborKeysMatchesProbe(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)
	dirs := []struct {
		cd csr.Dir
		gd graphstore.Direction
	}{{csr.Out, graphstore.Outbound}, {csr.In, graphstore.Inbound}, {csr.Any, graphstore.Any}}
	for _, d := range dirs {
		for _, v := range []string{"alice", "bob", "carol", "dave", "eve", "nosuch"} {
			for _, label := range []string{"", "follows", "likes"} {
				ns, err := s.Neighbors(engineView(t, e), "soc", v, d.gd, label)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]string, 0, len(ns))
				for _, n := range ns {
					want = append(want, n.VertexKey)
				}
				got := g.NeighborKeys(v, d.cd, label)
				if !sameKeys(want, got) {
					t.Fatalf("%s %v %q: probe=%v csr=%v", v, d.gd, label, want, got)
				}
			}
		}
	}
}

func TestBadDepthRange(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	g := buildSoc(t, e)
	if _, err := g.Traverse("alice", -1, 2, csr.Out, "", 1); err == nil {
		t.Fatal("negative min accepted")
	}
	if _, err := g.Traverse("alice", 3, 1, csr.Out, "", 1); err == nil {
		t.Fatal("max < min accepted")
	}
}

// TestParallelExpansionDeterministic runs a wide fan-out graph with enough
// frontier to trip the parallel path and checks the order is identical to
// the serial walk, repeatedly.
func TestParallelExpansionDeterministic(t *testing.T) {
	e, s := setup(t)
	mustUpdate(t, e, func(tx *engine.Txn) error {
		if err := s.PutVertex(tx, "fan", "root", docKV()); err != nil {
			return err
		}
		for i := 0; i < 600; i++ {
			mid := fmt.Sprintf("m%04d", i)
			if err := s.PutVertex(tx, "fan", mid, docKV()); err != nil {
				return err
			}
			if _, err := s.Connect(tx, "fan", "root", mid, "", docKV()); err != nil {
				return err
			}
			leaf := fmt.Sprintf("l%04d", i)
			if err := s.PutVertex(tx, "fan", leaf, docKV()); err != nil {
				return err
			}
			if _, err := s.Connect(tx, "fan", mid, leaf, "", docKV()); err != nil {
				return err
			}
		}
		return nil
	})
	var g *csr.Graph
	if err := e.SnapshotView(func(tx *engine.Txn) error {
		var err error
		g, err = csr.Build(tx, spec("fan"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	serial, err := g.Traverse("root", 1, 2, csr.Out, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 1200 {
		t.Fatalf("serial reached %d vertices, want 1200", len(serial))
	}
	for i := 0; i < 5; i++ {
		par, err := g.Traverse("root", 1, 2, csr.Out, "", 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel order diverged from serial on run %d", i)
		}
	}
}

func TestCacheReuseAndRebuild(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	c := csr.NewCache()

	get := func() *csr.Graph {
		t.Helper()
		var g *csr.Graph
		if err := e.SnapshotView(func(tx *engine.Txn) error {
			var ok bool
			var err error
			g, ok, err = c.Get(tx, "soc", spec("soc"))
			if err == nil && !ok {
				t.Fatal("snapshot tx did not hit the CSR cache")
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	g1 := get()
	for i := 0; i < 9; i++ {
		if get() != g1 {
			t.Fatal("unchanged graph was rebuilt")
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Rebuilds != 0 || st.Reuses != 9 {
		t.Fatalf("stats = %+v, want 1 build / 0 rebuilds / 9 reuses", st)
	}

	// A write to the graph invalidates; a rebuild sees the new edge.
	mustUpdate(t, e, func(tx *engine.Txn) error {
		_, err := s.Connect(tx, "soc", "eve", "alice", "follows", docKV())
		return err
	})
	g2 := get()
	if g2 == g1 {
		t.Fatal("stale CSR served after commit")
	}
	if got := g2.NeighborKeys("eve", csr.Out, ""); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("rebuilt CSR missing new edge: %v", got)
	}
	st = c.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("stats = %+v, want 1 rebuild", st)
	}

	// Writes to unrelated keyspaces must not invalidate.
	mustUpdate(t, e, func(tx *engine.Txn) error {
		return tx.Put("unrelated", []byte("k"), []byte("v"))
	})
	if get() != g2 {
		t.Fatal("unrelated write invalidated the CSR cache")
	}
}

// TestCacheDropRecreateEpoch pins the drop-epoch disambiguation: dropping
// and re-seeding a graph resets per-keyspace version counters, so the
// version vector alone can collide with the cached one; the epoch must
// force a rebuild.
func TestCacheDropRecreateEpoch(t *testing.T) {
	e, s := setup(t)
	c := csr.NewCache()

	seed := func(far string) {
		mustUpdate(t, e, func(tx *engine.Txn) error {
			for _, v := range []string{"a", far} {
				if err := s.PutVertex(tx, "g2", v, docKV()); err != nil {
					return err
				}
			}
			_, err := s.Connect(tx, "g2", "a", far, "", docKV())
			return err
		})
	}
	get := func() *csr.Graph {
		t.Helper()
		var g *csr.Graph
		if err := e.SnapshotView(func(tx *engine.Txn) error {
			var err error
			g, _, err = c.Get(tx, "g2", spec("g2"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	seed("b")
	g1 := get()
	mustUpdate(t, e, func(tx *engine.Txn) error {
		for _, ks := range []string{spec("g2").Vertex, spec("g2").Edge, spec("g2").Out, spec("g2").In} {
			if err := tx.DropKeyspace(ks); err != nil {
				return err
			}
		}
		return nil
	})
	seed("z")
	g2 := get()
	if g2 == g1 {
		t.Fatal("drop+recreate served the stale CSR")
	}
	if got := g2.NeighborKeys("a", csr.Out, ""); len(got) != 1 || got[0] != "z" {
		t.Fatalf("rebuilt CSR has wrong adjacency: %v", got)
	}
}

func TestCacheLockedTxFallsBack(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	c := csr.NewCache()
	mustUpdate(t, e, func(tx *engine.Txn) error {
		g, ok, err := c.Get(tx, "soc", spec("soc"))
		if err != nil {
			return err
		}
		if ok || g != nil {
			t.Fatal("locked transaction served from CSR cache")
		}
		return nil
	})
}

func TestCacheInvalidate(t *testing.T) {
	e, s := setup(t)
	seedSocial(t, e, s)
	c := csr.NewCache()
	if err := e.SnapshotView(func(tx *engine.Txn) error {
		_, _, err := c.Get(tx, "soc", spec("soc"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Graphs != 1 || st.Bytes <= 0 {
		t.Fatalf("stats before invalidate = %+v", st)
	}
	c.Invalidate("soc")
	if st := c.Stats(); st.Graphs != 0 || st.Bytes != 0 {
		t.Fatalf("stats after invalidate = %+v", st)
	}
}

// engineView returns a read-only snapshot Tx for probe-path comparisons.
// The test keeps it open for the duration of the calling test.
func engineView(t *testing.T, e *engine.Engine) engine.Tx {
	t.Helper()
	tx, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tx.Abort() })
	return tx
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// docKV builds a flat string-field object document from key/value pairs.
func docKV(kv ...string) mmvalue.Value {
	fields := make([]mmvalue.Field, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		fields = append(fields, mmvalue.F(kv[i], mmvalue.String(kv[i+1])))
	}
	return mmvalue.Object(fields...)
}
