package csr

import (
	"sync"

	"repro/internal/engine"
)

// versioned is the slice of the transaction surface the cache validates
// against: the per-keyspace data-version vector and keyspace-drop epoch
// captured at the transaction's snapshot cut. Both engine.Txn and the
// shard router's Txn implement it (the router sums per-shard values, which
// stays collision-free because versions only ever increase). Locked
// transactions report ok == false and never hit the cache.
type versioned interface {
	SnapshotVersionsFor(keyspaces []string) ([]uint64, bool)
	SnapshotDropEpoch() (uint64, bool)
}

// entry pairs one built Graph with the validity token it was built at.
type entry struct {
	epoch uint64
	vers  [4]uint64
	g     *Graph
}

// Cache holds one CSR snapshot per graph, validated by the snapshot's
// version vector: a Get whose transaction observes the same (drop epoch,
// 4-keyspace versions) token reuses the cached Graph without touching the
// engine at all, so an unchanged graph rebuilds zero times across any
// number of queries.
//
// c.mu guards only the entries map and counters — it is a leaf lock, held
// for map operations only, never across a Build (which scans keyspaces).
// Two transactions racing on a cold graph may both build; the later store
// wins, which is harmless since both snapshots observed identical content.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	bytes   int // sum of entry Graph footprints, maintained incrementally

	builds   int // cold builds (no entry existed)
	rebuilds int // version-mismatch builds (entry existed, token changed)
	reuses   int // cache hits
}

// NewCache returns an empty CSR cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*entry{}}
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Builds   int // CSR constructions for graphs with no cached snapshot
	Rebuilds int // CSR constructions replacing a stale snapshot
	Reuses   int // traversals served from a cached snapshot
	Graphs   int // graphs currently cached
	Bytes    int // approximate resident size of all cached snapshots
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Builds:   c.builds,
		Rebuilds: c.rebuilds,
		Reuses:   c.reuses,
		Graphs:   len(c.entries),
		Bytes:    c.bytes,
	}
}

// Invalidate drops the cached snapshot for one graph (used on graph drop,
// and by benchmarks to measure cold-build amortization).
func (c *Cache) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		c.bytes -= e.g.Bytes()
		delete(c.entries, name)
	}
}

// Get returns the CSR snapshot for the named graph as seen by tx's
// snapshot, building (and caching) it if the cached one is missing or
// stale. ok is false — with no error — when tx is not a snapshot
// transaction; the caller falls back to the probe path.
func (c *Cache) Get(tx engine.Tx, name string, spec Spec) (*Graph, bool, error) {
	vt, okIface := tx.(versioned)
	if !okIface {
		return nil, false, nil
	}
	vers, ok := vt.SnapshotVersionsFor([]string{spec.Vertex, spec.Edge, spec.Out, spec.In})
	if !ok {
		return nil, false, nil
	}
	epoch, ok := vt.SnapshotDropEpoch()
	if !ok {
		return nil, false, nil
	}
	var token [4]uint64
	copy(token[:], vers)

	c.mu.Lock()
	e, had := c.entries[name]
	if had && e.epoch == epoch && e.vers == token {
		c.reuses++
		g := e.g
		c.mu.Unlock()
		return g, true, nil
	}
	c.mu.Unlock()

	// Build outside the mutex: the scans may be large and must not block
	// cache hits for other graphs.
	g, err := Build(tx, spec)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	switch prev, ok := c.entries[name]; {
	case !ok:
		c.builds++
	case prev.epoch == epoch && prev.vers == token:
		// A concurrent transaction built the same snapshot while we did;
		// not a staleness rebuild.
		c.bytes -= prev.g.Bytes()
	default:
		c.bytes -= prev.g.Bytes()
		c.rebuilds++
	}
	c.entries[name] = &entry{epoch: epoch, vers: token, g: g}
	c.bytes += g.Bytes()
	return g, true, nil
}
