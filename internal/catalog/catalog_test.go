package catalog

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/mmvalue"
)

func setup(t *testing.T) (*engine.Engine, *Catalog) {
	t.Helper()
	e, err := engine.Open(engine.Options{Durability: engine.Ephemeral})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, New(e)
}

func TestCreateGetDelete(t *testing.T) {
	e, c := setup(t)
	meta := mmvalue.MustParseJSON(`{"kind":"demo"}`)
	err := e.Update(func(tx *engine.Txn) error {
		return c.Create(tx, "collection", "orders", meta)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.View(func(tx *engine.Txn) error {
		got, err := c.Get(tx, "collection", "orders")
		if err != nil || !mmvalue.Equal(got, meta) {
			t.Fatalf("Get = %v, %v", got, err)
		}
		ok, _ := c.Exists(tx, "collection", "orders")
		if !ok {
			t.Fatal("Exists = false")
		}
		return nil
	})
	// Duplicate create fails.
	err = e.Update(func(tx *engine.Txn) error {
		return c.Create(tx, "collection", "orders", meta)
	})
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	// Missing object.
	e.View(func(tx *engine.Txn) error {
		if _, err := c.Get(tx, "collection", "nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing Get = %v", err)
		}
		return nil
	})
	e.Update(func(tx *engine.Txn) error { return c.Delete(tx, "collection", "orders") })
	e.View(func(tx *engine.Txn) error {
		ok, _ := c.Exists(tx, "collection", "orders")
		if ok {
			t.Fatal("survived delete")
		}
		return nil
	})
}

func TestListByKind(t *testing.T) {
	e, c := setup(t)
	e.Update(func(tx *engine.Txn) error {
		c.Create(tx, "table", "customers", mmvalue.Object())
		c.Create(tx, "collection", "orders", mmvalue.Object())
		c.Create(tx, "table", "products", mmvalue.Object())
		return nil
	})
	e.View(func(tx *engine.Txn) error {
		tables, err := c.List(tx, "table")
		if err != nil || len(tables) != 2 {
			t.Fatalf("List(table) = %v, %v", tables, err)
		}
		if tables[0].Name != "customers" || tables[1].Name != "products" {
			t.Fatalf("List order = %v", tables)
		}
		all, _ := c.List(tx, "")
		if len(all) != 3 {
			t.Fatalf("List(all) = %d", len(all))
		}
		return nil
	})
}

func TestSchemaValidationModes(t *testing.T) {
	declared := []FieldDef{
		{Name: "name", Type: mmvalue.KindString, Required: true},
		{Name: "credit", Type: mmvalue.KindInt},
	}
	full := Schema{Mode: SchemaFull, Fields: declared}
	fullOpen := Schema{Mode: SchemaFull, Open: true, Fields: declared}
	hybrid := Schema{Mode: SchemaHybrid, Fields: declared}
	less := Schemaless

	okDoc := mmvalue.MustParseJSON(`{"name":"Mary","credit":5000}`)
	extraDoc := mmvalue.MustParseJSON(`{"name":"Mary","credit":5000,"extra":1}`)
	missingDoc := mmvalue.MustParseJSON(`{"credit":5000}`)
	wrongType := mmvalue.MustParseJSON(`{"name":42}`)

	cases := []struct {
		name   string
		schema Schema
		doc    mmvalue.Value
		ok     bool
	}{
		{"full ok", full, okDoc, true},
		{"full extra closed", full, extraDoc, false},
		{"full missing required", full, missingDoc, false},
		{"full wrong type", full, wrongType, false},
		{"full open extra", fullOpen, extraDoc, true},
		{"hybrid extra", hybrid, extraDoc, true},
		{"hybrid missing", hybrid, missingDoc, true},
		{"hybrid wrong type", hybrid, wrongType, false},
		{"schemaless anything", less, wrongType, true},
	}
	for _, c := range cases {
		err := c.schema.Validate(c.doc)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSchemaNumericPromotionAndNull(t *testing.T) {
	s := Schema{Mode: SchemaHybrid, Fields: []FieldDef{{Name: "price", Type: mmvalue.KindFloat}}}
	if err := s.Validate(mmvalue.MustParseJSON(`{"price":66}`)); err != nil {
		t.Fatalf("int into float column: %v", err)
	}
	if err := s.Validate(mmvalue.MustParseJSON(`{"price":null}`)); err != nil {
		t.Fatalf("null into column: %v", err)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := Schema{
		Mode: SchemaFull,
		Open: true,
		Fields: []FieldDef{
			{Name: "a", Type: mmvalue.KindString, Required: true},
			{Name: "b", Type: mmvalue.KindArray},
		},
	}
	back := SchemaFromValue(SchemaValue(s))
	if back.Mode != s.Mode || back.Open != s.Open || len(back.Fields) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Fields[0] != s.Fields[0] || back.Fields[1] != s.Fields[1] {
		t.Fatalf("fields = %+v", back.Fields)
	}
}

func TestCreateWithSchemaAndGetSchema(t *testing.T) {
	e, c := setup(t)
	s := Schema{Mode: SchemaHybrid, Fields: []FieldDef{{Name: "x", Type: mmvalue.KindInt}}}
	e.Update(func(tx *engine.Txn) error {
		return c.CreateWithSchema(tx, "collection", "xs", s)
	})
	e.View(func(tx *engine.Txn) error {
		got, err := c.GetSchema(tx, "collection", "xs")
		if err != nil || got.Mode != SchemaHybrid || len(got.Fields) != 1 {
			t.Fatalf("GetSchema = %+v, %v", got, err)
		}
		return nil
	})
}

func TestValidateNonObject(t *testing.T) {
	s := Schema{Mode: SchemaFull}
	if err := s.Validate(mmvalue.Int(5)); err == nil {
		t.Fatal("scalar should fail schema-full validation")
	}
}
