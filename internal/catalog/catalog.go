// Package catalog is unidb's schema registry: one keyspace holding a
// metadata document per named object (collection, table, graph, bucket,
// index, XML document, RDF graph). It also implements the paper's
// "flexible schema" axis — the three OrientDB schema modes (schema-less,
// schema-full, schema-hybrid) and AsterixDB's open/closed datatypes — as a
// validation policy applied by the stores.
package catalog

import (
	"errors"
	"fmt"

	"repro/internal/binenc"
	"repro/internal/engine"
	"repro/internal/mmvalue"
)

// Keyspace is the engine keyspace holding all catalog metadata. Every DDL
// operation (collection/table/graph/index create or drop) writes here, so
// WAL subscribers can watch it to invalidate schema-derived caches (core's
// compiled-plan cache does exactly that).
const Keyspace = "__catalog"

const keyspace = Keyspace

// ErrExists is returned when creating an object that is already registered.
var ErrExists = errors.New("catalog: object already exists")

// ErrNotFound is returned for missing catalog objects.
var ErrNotFound = errors.New("catalog: object not found")

// SchemaMode is the validation discipline of a collection.
type SchemaMode string

// Schema modes (OrientDB terminology from the paper).
const (
	// SchemaLess accepts any object.
	SchemaLess SchemaMode = "schemaless"
	// SchemaFull requires every declared field and, with Open false,
	// rejects undeclared fields (AsterixDB "closed" type).
	SchemaFull SchemaMode = "full"
	// SchemaHybrid validates declared fields when present but requires
	// nothing and accepts anything extra.
	SchemaHybrid SchemaMode = "hybrid"
)

// FieldDef declares one field of a schema.
type FieldDef struct {
	Name     string
	Type     mmvalue.Kind
	Required bool
}

// Schema is a collection-level validation policy.
type Schema struct {
	Mode SchemaMode
	// Open controls whether undeclared fields are allowed in SchemaFull
	// mode (the AsterixDB open/closed datatype distinction).
	Open   bool
	Fields []FieldDef
}

// Schemaless is the default schema.
var Schemaless = Schema{Mode: SchemaLess}

// Validate checks doc against the schema.
func (s Schema) Validate(doc mmvalue.Value) error {
	if s.Mode == SchemaLess || s.Mode == "" {
		return nil
	}
	if doc.Kind() != mmvalue.KindObject {
		return fmt.Errorf("catalog: document must be an object, got %v", doc.Kind())
	}
	declared := map[string]FieldDef{}
	for _, f := range s.Fields {
		declared[f.Name] = f
		v, present := doc.Get(f.Name)
		if !present {
			if s.Mode == SchemaFull && f.Required {
				return fmt.Errorf("catalog: missing required field %q", f.Name)
			}
			continue
		}
		if !kindMatches(f.Type, v) {
			return fmt.Errorf("catalog: field %q has kind %v, want %v", f.Name, v.Kind(), f.Type)
		}
	}
	if s.Mode == SchemaFull && !s.Open {
		for _, f := range doc.Fields() {
			if _, ok := declared[f.Name]; !ok {
				return fmt.Errorf("catalog: undeclared field %q in closed type", f.Name)
			}
		}
	}
	return nil
}

// kindMatches allows int where float is declared (numeric promotion) and
// null anywhere (SQL-style nullable fields; Required covers presence).
func kindMatches(want mmvalue.Kind, v mmvalue.Value) bool {
	if v.IsNull() {
		return true
	}
	if v.Kind() == want {
		return true
	}
	return want == mmvalue.KindFloat && v.Kind() == mmvalue.KindInt
}

// schemaToValue serializes a Schema into a metadata document.
func schemaToValue(s Schema) mmvalue.Value {
	fields := make([]mmvalue.Value, len(s.Fields))
	for i, f := range s.Fields {
		fields[i] = mmvalue.Object(
			mmvalue.F("name", mmvalue.String(f.Name)),
			mmvalue.F("type", mmvalue.Int(int64(f.Type))),
			mmvalue.F("required", mmvalue.Bool(f.Required)),
		)
	}
	return mmvalue.Object(
		mmvalue.F("mode", mmvalue.String(string(s.Mode))),
		mmvalue.F("open", mmvalue.Bool(s.Open)),
		mmvalue.F("fields", mmvalue.ArrayOf(fields)),
	)
}

// SchemaFromValue deserializes a metadata document into a Schema.
func SchemaFromValue(v mmvalue.Value) Schema {
	s := Schema{
		Mode: SchemaMode(v.GetOr("mode").AsString()),
		Open: v.GetOr("open").AsBool(),
	}
	for _, f := range v.GetOr("fields").AsArray() {
		s.Fields = append(s.Fields, FieldDef{
			Name:     f.GetOr("name").AsString(),
			Type:     mmvalue.Kind(f.GetOr("type").AsInt()),
			Required: f.GetOr("required").AsBool(),
		})
	}
	return s
}

// Catalog reads and writes object metadata within transactions.
//
// It keeps a decode cache: metadata documents are small but read on every
// query (source resolution, schema checks, index selection), and decoding
// the same bytes each time dominated profiles. The cache is validated
// against the raw bytes the transaction actually read, so isolation and
// own-write visibility are exactly those of tx.Get — a transaction that
// rewrote an entry sees its own version, and an aborted DDL leaves no
// stale decode behind (the raw bytes won't match).
type Catalog struct {
	e  engine.Sizer
	dc *binenc.DecodeCache
}

// decodeCacheCap bounds the decode cache; far above any realistic schema
// count, it only guards against unbounded growth from churning DDL.
const decodeCacheCap = 4096

// New returns a catalog over the engine.
func New(e engine.Sizer) *Catalog {
	return &Catalog{e: e, dc: binenc.NewDecodeCache(decodeCacheCap)}
}

func objKey(kind, name string) []byte { return []byte(kind + "\x00" + name) }

// Entry is a catalog record: the object kind ("collection", "table",
// "graph", …), its name, and arbitrary metadata (including the schema).
type Entry struct {
	Kind string
	Name string
	Meta mmvalue.Value
}

// Create registers an object, failing if it exists.
func (c *Catalog) Create(tx engine.Tx, kind, name string, meta mmvalue.Value) error {
	k := objKey(kind, name)
	if _, ok, err := tx.Get(keyspace, k); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s %q", ErrExists, kind, name)
	}
	return tx.Put(keyspace, k, binenc.Encode(meta))
}

// Put registers or replaces an object's metadata.
func (c *Catalog) Put(tx engine.Tx, kind, name string, meta mmvalue.Value) error {
	return tx.Put(keyspace, objKey(kind, name), binenc.Encode(meta))
}

// Get fetches an object's metadata.
func (c *Catalog) Get(tx engine.Tx, kind, name string) (mmvalue.Value, error) {
	raw, ok, err := tx.Get(keyspace, objKey(kind, name))
	if err != nil {
		return mmvalue.Null, err
	}
	if !ok {
		return mmvalue.Null, fmt.Errorf("%w: %s %q", ErrNotFound, kind, name)
	}
	return c.dc.Decode(raw)
}

// Exists reports whether the object is registered.
func (c *Catalog) Exists(tx engine.Tx, kind, name string) (bool, error) {
	_, ok, err := tx.Get(keyspace, objKey(kind, name))
	return ok, err
}

// Delete unregisters an object.
func (c *Catalog) Delete(tx engine.Tx, kind, name string) error {
	return tx.Delete(keyspace, objKey(kind, name))
}

// List returns all entries of a kind in name order; empty kind lists
// everything.
func (c *Catalog) List(tx engine.Tx, kind string) ([]Entry, error) {
	var out []Entry
	var decodeErr error
	err := tx.Scan(keyspace, nil, nil, func(k, v []byte) bool {
		parts := string(k)
		sep := -1
		for i := 0; i < len(parts); i++ {
			if parts[i] == 0 {
				sep = i
				break
			}
		}
		if sep < 0 {
			return true
		}
		ekind, ename := parts[:sep], parts[sep+1:]
		if kind != "" && ekind != kind {
			return true
		}
		meta, err := binenc.Decode(v)
		if err != nil {
			decodeErr = err
			return false
		}
		out = append(out, Entry{Kind: ekind, Name: ename, Meta: meta})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, decodeErr
}

// CreateWithSchema registers an object whose metadata is (only) a schema.
func (c *Catalog) CreateWithSchema(tx engine.Tx, kind, name string, schema Schema) error {
	return c.Create(tx, kind, name, schemaToValue(schema))
}

// GetSchema fetches a schema stored by CreateWithSchema, or the schema
// under the "schema" field of a larger metadata document.
func (c *Catalog) GetSchema(tx engine.Tx, kind, name string) (Schema, error) {
	meta, err := c.Get(tx, kind, name)
	if err != nil {
		return Schema{}, err
	}
	if sub, ok := meta.Get("schema"); ok {
		return SchemaFromValue(sub), nil
	}
	return SchemaFromValue(meta), nil
}

// SchemaValue exposes schema serialization for stores embedding schemas in
// larger metadata documents.
func SchemaValue(s Schema) mmvalue.Value { return schemaToValue(s) }
