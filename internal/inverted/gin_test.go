package inverted

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mmvalue"
)

// The paper's own example: {"foo": {"bar": "baz"}} produces three items in
// jsonb_ops (foo, bar, baz separately) and one hashed item in
// jsonb_path_ops.
func TestPaperFooBarBazExample(t *testing.T) {
	doc := mmvalue.MustParseJSON(`{"foo": {"bar": "baz"}}`)
	ops := NewGIN(OpsMode)
	ops.Add("d1", doc)
	if ops.Items() != 3 {
		t.Errorf("jsonb_ops items = %d, want 3 (foo, bar, baz)", ops.Items())
	}
	pathOps := NewGIN(PathOpsMode)
	pathOps.Add("d1", doc)
	if pathOps.Items() != 1 {
		t.Errorf("jsonb_path_ops items = %d, want 1 (hash of foo.bar=baz)", pathOps.Items())
	}
}

func TestContainmentCandidatesBothModes(t *testing.T) {
	docs := map[string]string{
		"a": `{"Order_no":"0c6df508","Orderlines":[{"Product_no":"2724f","Price":66},{"Product_no":"3424g","Price":40}]}`,
		"b": `{"Order_no":"0c6df511","Orderlines":[{"Product_no":"2454f","Price":34}]}`,
		"c": `{"Order_no":"xxx","note":"no orderlines"}`,
	}
	for _, mode := range []Mode{OpsMode, PathOpsMode} {
		g := NewGIN(mode)
		for id, j := range docs {
			g.Add(id, mmvalue.MustParseJSON(j))
		}
		pattern := mmvalue.MustParseJSON(`{"Orderlines":[{"Product_no":"2724f"}]}`)
		cands := g.CandidatesContains(pattern)
		// GIN is lossy: candidates must be a superset of true matches and
		// must include "a".
		found := false
		for _, id := range cands {
			if id == "a" {
				found = true
			}
			if id == "c" {
				t.Errorf("%v: doc c can never be a candidate (no shared items)", mode)
			}
		}
		if !found {
			t.Errorf("%v: true match a missing from candidates %v", mode, cands)
		}
		// Recheck semantics: filtering candidates with Contains gives the
		// exact answer.
		var exact []string
		for _, id := range cands {
			if mmvalue.Contains(mmvalue.MustParseJSON(docs[id]), pattern) {
				exact = append(exact, id)
			}
		}
		if !reflect.DeepEqual(exact, []string{"a"}) {
			t.Errorf("%v: recheck = %v, want [a]", mode, exact)
		}
	}
}

func TestEmptyPatternMatchesAll(t *testing.T) {
	g := NewGIN(OpsMode)
	g.Add("x", mmvalue.MustParseJSON(`{"a":1}`))
	g.Add("y", mmvalue.MustParseJSON(`{"b":2}`))
	got := g.CandidatesContains(mmvalue.MustParseJSON(`{}`))
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("empty pattern candidates = %v", got)
	}
}

func TestHasKeyOnlyInOpsMode(t *testing.T) {
	doc := mmvalue.MustParseJSON(`{"name":"Mary","credit":5000}`)
	ops := NewGIN(OpsMode)
	ops.Add("d", doc)
	ids, supported := ops.CandidatesHasKey("name")
	if !supported || len(ids) != 1 || ids[0] != "d" {
		t.Fatalf("ops HasKey = %v, %v", ids, supported)
	}
	if ids, supported := ops.CandidatesHasKey("missing"); !supported || len(ids) != 0 {
		t.Fatalf("ops HasKey(missing) = %v, %v", ids, supported)
	}
	pathOps := NewGIN(PathOpsMode)
	pathOps.Add("d", doc)
	if _, supported := pathOps.CandidatesHasKey("name"); supported {
		t.Fatal("jsonb_path_ops must not support the ? operator (paper)")
	}
}

func TestHasAnyAllKeys(t *testing.T) {
	g := NewGIN(OpsMode)
	g.Add("1", mmvalue.MustParseJSON(`{"a":1,"b":2}`))
	g.Add("2", mmvalue.MustParseJSON(`{"b":2,"c":3}`))
	any, _ := g.CandidatesHasAnyKey([]string{"a", "c"})
	if !reflect.DeepEqual(any, []string{"1", "2"}) {
		t.Fatalf("?| = %v", any)
	}
	all, _ := g.CandidatesHasAllKeys([]string{"b", "c"})
	if !reflect.DeepEqual(all, []string{"2"}) {
		t.Fatalf("?& = %v", all)
	}
}

func TestRemoveAndReAdd(t *testing.T) {
	g := NewGIN(OpsMode)
	g.Add("d", mmvalue.MustParseJSON(`{"a":1}`))
	g.Remove("d")
	if g.Items() != 0 {
		t.Fatalf("items after remove = %d", g.Items())
	}
	if got := g.CandidatesContains(mmvalue.MustParseJSON(`{"a":1}`)); len(got) != 0 {
		t.Fatalf("candidates after remove = %v", got)
	}
	// Re-adding with different content replaces postings.
	g.Add("d", mmvalue.MustParseJSON(`{"b":2}`))
	g.Add("d", mmvalue.MustParseJSON(`{"c":3}`))
	if got := g.CandidatesContains(mmvalue.MustParseJSON(`{"b":2}`)); len(got) != 0 {
		t.Fatalf("stale postings survived re-add: %v", got)
	}
	if got := g.CandidatesContains(mmvalue.MustParseJSON(`{"c":3}`)); len(got) != 1 {
		t.Fatalf("new postings missing: %v", got)
	}
}

func TestPathOpsSmallerThanOps(t *testing.T) {
	// The headline E3 size claim: path_ops indexes fewer items.
	ops, pathOps := NewGIN(OpsMode), NewGIN(PathOpsMode)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		doc := mmvalue.Object(
			mmvalue.F("id", mmvalue.Int(int64(i))),
			mmvalue.F("name", mmvalue.String(fmt.Sprintf("user%d", r.Intn(50)))),
			mmvalue.F("tags", mmvalue.Array(
				mmvalue.String(fmt.Sprintf("t%d", r.Intn(10))),
				mmvalue.String(fmt.Sprintf("t%d", r.Intn(10))))),
			mmvalue.F("addr", mmvalue.Object(
				mmvalue.F("city", mmvalue.String(fmt.Sprintf("c%d", r.Intn(20)))))),
		)
		id := fmt.Sprintf("d%d", i)
		ops.Add(id, doc)
		pathOps.Add(id, doc)
	}
	if pathOps.Items() >= ops.Items() {
		t.Fatalf("path_ops items (%d) should be fewer than ops items (%d)",
			pathOps.Items(), ops.Items())
	}
}

func TestNumericCanonicalization(t *testing.T) {
	g := NewGIN(PathOpsMode)
	g.Add("d", mmvalue.MustParseJSON(`{"price":66}`))
	cands := g.CandidatesContains(mmvalue.Object(mmvalue.F("price", mmvalue.Float(66.0))))
	if len(cands) != 1 {
		t.Fatalf("66 vs 66.0 should share an item, candidates = %v", cands)
	}
}

// Property: GIN candidates are always a superset of the true containment
// matches, in both modes.
func TestPropertyCandidatesSuperset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := map[string]mmvalue.Value{}
		for i := 0; i < 20; i++ {
			docs[fmt.Sprintf("d%d", i)] = randDoc(r)
		}
		// Pattern: a random sub-object of a random doc, or a random doc.
		pattern := randDoc(r)
		for _, mode := range []Mode{OpsMode, PathOpsMode} {
			g := NewGIN(mode)
			for id, d := range docs {
				g.Add(id, d)
			}
			cands := map[string]struct{}{}
			for _, id := range g.CandidatesContains(pattern) {
				cands[id] = struct{}{}
			}
			for id, d := range docs {
				if mmvalue.Contains(d, pattern) {
					if _, ok := cands[id]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randDoc(r *rand.Rand) mmvalue.Value {
	nf := 1 + r.Intn(3)
	fields := make([]mmvalue.Field, 0, nf)
	for i := 0; i < nf; i++ {
		name := string(rune('a' + r.Intn(5)))
		var v mmvalue.Value
		switch r.Intn(4) {
		case 0:
			v = mmvalue.Int(int64(r.Intn(5)))
		case 1:
			v = mmvalue.String(string(rune('x' + r.Intn(3))))
		case 2:
			v = mmvalue.Array(mmvalue.Int(int64(r.Intn(3))))
		default:
			v = mmvalue.Object(mmvalue.F("n", mmvalue.Int(int64(r.Intn(3)))))
		}
		fields = append(fields, mmvalue.F(name, v))
	}
	return mmvalue.ObjectOf(fields)
}
