package inverted

import (
	"reflect"
	"testing"
)

func sampleIndex() *FullText {
	ft := NewFullText()
	ft.Add("p1", "The King's Speech by Mark Logue and Peter Conradi")
	ft.Add("p2", "Toy Story: a story about toys")
	ft.Add("p3", "Database systems: the complete book")
	ft.Add("p4", "Graph databases and the king of query languages")
	return ft
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The King's Speech, 2010!")
	want := []string{"the", "king", "s", "speech", "2010"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestSearchTerm(t *testing.T) {
	ft := sampleIndex()
	if got := ft.Search("king"); !reflect.DeepEqual(got, []string{"p1", "p4"}) {
		t.Fatalf("Search(king) = %v", got)
	}
	if got := ft.Search("KING"); !reflect.DeepEqual(got, []string{"p1", "p4"}) {
		t.Fatalf("Search should be case-insensitive, got %v", got)
	}
	if got := ft.Search("zebra"); len(got) != 0 {
		t.Fatalf("Search(zebra) = %v", got)
	}
}

func TestSearchPrefix(t *testing.T) {
	ft := sampleIndex()
	got := ft.SearchPrefix("data")
	if !reflect.DeepEqual(got, []string{"p3", "p4"}) {
		t.Fatalf("SearchPrefix(data) = %v", got)
	}
}

func TestBooleanOps(t *testing.T) {
	ft := sampleIndex()
	if got := ft.SearchAll([]string{"king", "speech"}); !reflect.DeepEqual(got, []string{"p1"}) {
		t.Fatalf("AND = %v", got)
	}
	if got := ft.SearchAny([]string{"toy", "graph"}); !reflect.DeepEqual(got, []string{"p2", "p4"}) {
		t.Fatalf("OR = %v", got)
	}
	base := ft.Search("king")
	if got := ft.SearchNot(base, "speech"); !reflect.DeepEqual(got, []string{"p4"}) {
		t.Fatalf("NOT = %v", got)
	}
	if got := ft.SearchAll(nil); got != nil {
		t.Fatalf("AND of nothing = %v", got)
	}
}

func TestPhrase(t *testing.T) {
	ft := sampleIndex()
	if got := ft.SearchPhrase("king s speech"); !reflect.DeepEqual(got, []string{"p1"}) {
		t.Fatalf("phrase = %v", got)
	}
	// Terms present but not adjacent.
	if got := ft.SearchPhrase("speech king"); len(got) != 0 {
		t.Fatalf("non-adjacent phrase matched: %v", got)
	}
	if got := ft.SearchPhrase("toy story"); !reflect.DeepEqual(got, []string{"p2"}) {
		t.Fatalf("phrase toy story = %v", got)
	}
	if got := ft.SearchPhrase("story"); !reflect.DeepEqual(got, []string{"p2"}) {
		t.Fatalf("single-term phrase = %v", got)
	}
}

func TestNear(t *testing.T) {
	ft := sampleIndex()
	// "graph databases" are adjacent in p4.
	if got := ft.SearchNear("graph", "databases", 1); !reflect.DeepEqual(got, []string{"p4"}) {
		t.Fatalf("near = %v", got)
	}
	// "king" (pos 4) and "query" (pos 6) in p4 are 2 apart.
	if got := ft.SearchNear("king", "query", 1); len(got) != 0 {
		t.Fatalf("near(1) should miss, got %v", got)
	}
	if got := ft.SearchNear("king", "query", 2); !reflect.DeepEqual(got, []string{"p4"}) {
		t.Fatalf("near(2) = %v", got)
	}
}

func TestRemoveDocument(t *testing.T) {
	ft := sampleIndex()
	ft.Remove("p1")
	if got := ft.Search("speech"); len(got) != 0 {
		t.Fatalf("Search after remove = %v", got)
	}
	if got := ft.Search("king"); !reflect.DeepEqual(got, []string{"p4"}) {
		t.Fatalf("king after remove = %v", got)
	}
	if ft.DocCount() != 3 {
		t.Fatalf("DocCount = %d", ft.DocCount())
	}
	// Removing twice is a no-op.
	ft.Remove("p1")
	if ft.DocCount() != 3 {
		t.Fatalf("double remove changed count")
	}
}

func TestReAddReplaces(t *testing.T) {
	ft := NewFullText()
	ft.Add("d", "alpha beta")
	ft.Add("d", "gamma delta")
	if got := ft.Search("alpha"); len(got) != 0 {
		t.Fatalf("stale term survived re-add: %v", got)
	}
	if got := ft.Search("gamma"); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("new term missing: %v", got)
	}
	if ft.DocCount() != 1 {
		t.Fatalf("DocCount = %d", ft.DocCount())
	}
}

func TestRepeatedTermPositions(t *testing.T) {
	ft := NewFullText()
	ft.Add("d", "spam spam eggs spam")
	if got := ft.SearchPhrase("spam eggs spam"); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("phrase with repeats = %v", got)
	}
	if got := ft.SearchPhrase("eggs eggs"); len(got) != 0 {
		t.Fatalf("phantom phrase matched: %v", got)
	}
}
