package inverted

import (
	"sort"
	"strings"
	"unicode"
)

// FullText is a word-level inverted index with positional postings: the
// structure behind the matrices' "full-text" column (Riak-Solr, SQL Server
// full-text, MarkLogic universal index). It supports term, boolean (AND/OR/
// NOT), prefix (wildcard), and exact phrase queries.
type FullText struct {
	postings map[string]map[string][]int // term -> doc id -> positions
	docs     map[string][]string         // doc id -> terms (for removal)
	count    int
}

// NewFullText returns an empty full-text index.
func NewFullText() *FullText {
	return &FullText{
		postings: map[string]map[string][]int{},
		docs:     map[string][]string{},
	}
}

// Tokenize lower-cases and splits text on non-letter/digit runs. Exported
// so stores index and query with identical analysis.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// DocCount returns the number of indexed documents.
func (ft *FullText) DocCount() int { return ft.count }

// Add indexes text under the document id, replacing any previous content.
func (ft *FullText) Add(id, text string) {
	if _, ok := ft.docs[id]; ok {
		ft.Remove(id)
	}
	terms := Tokenize(text)
	seen := make([]string, 0, len(terms))
	for pos, term := range terms {
		m := ft.postings[term]
		if m == nil {
			m = map[string][]int{}
			ft.postings[term] = m
		}
		if _, dup := m[id]; !dup {
			seen = append(seen, term)
		}
		m[id] = append(m[id], pos)
	}
	ft.docs[id] = seen
	ft.count++
}

// Remove drops a document from the index.
func (ft *FullText) Remove(id string) {
	terms, ok := ft.docs[id]
	if !ok {
		return
	}
	delete(ft.docs, id)
	ft.count--
	for _, term := range terms {
		delete(ft.postings[term], id)
		if len(ft.postings[term]) == 0 {
			delete(ft.postings, term)
		}
	}
}

// Search returns the sorted ids of documents containing term.
func (ft *FullText) Search(term string) []string {
	term = strings.ToLower(term)
	m := ft.postings[term]
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SearchPrefix returns ids of documents containing any term with the given
// prefix (the wildcard query class of Riak Search).
func (ft *FullText) SearchPrefix(prefix string) []string {
	prefix = strings.ToLower(prefix)
	set := map[string]struct{}{}
	for term, m := range ft.postings {
		if strings.HasPrefix(term, prefix) {
			for id := range m {
				set[id] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SearchAll returns ids containing every term (boolean AND).
func (ft *FullText) SearchAll(terms []string) []string {
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]string, len(terms))
	for i, t := range terms {
		lists[i] = ft.Search(t)
	}
	return intersectAll(lists)
}

// SearchAny returns ids containing at least one term (boolean OR).
func (ft *FullText) SearchAny(terms []string) []string {
	var out []string
	for _, t := range terms {
		out = unionSorted(out, ft.Search(t))
	}
	return out
}

// SearchNot returns ids in base that do not contain term (boolean NOT).
func (ft *FullText) SearchNot(base []string, term string) []string {
	excluded := map[string]struct{}{}
	for _, id := range ft.Search(term) {
		excluded[id] = struct{}{}
	}
	var out []string
	for _, id := range base {
		if _, skip := excluded[id]; !skip {
			out = append(out, id)
		}
	}
	return out
}

// SearchPhrase returns ids of documents containing the exact token sequence.
func (ft *FullText) SearchPhrase(phrase string) []string {
	terms := Tokenize(phrase)
	if len(terms) == 0 {
		return nil
	}
	if len(terms) == 1 {
		return ft.Search(terms[0])
	}
	candidates := ft.SearchAll(terms)
	var out []string
	for _, id := range candidates {
		if ft.phraseAt(id, terms) {
			out = append(out, id)
		}
	}
	return out
}

func (ft *FullText) phraseAt(id string, terms []string) bool {
	first := ft.postings[terms[0]][id]
	for _, start := range first {
		ok := true
		for off := 1; off < len(terms); off++ {
			if !containsInt(ft.postings[terms[off]][id], start+off) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// SearchNear returns ids where the two terms occur within dist positions of
// each other (proximity search).
func (ft *FullText) SearchNear(a, b string, dist int) []string {
	a, b = strings.ToLower(a), strings.ToLower(b)
	candidates := ft.SearchAll([]string{a, b})
	var out []string
	for _, id := range candidates {
		pa, pb := ft.postings[a][id], ft.postings[b][id]
		if anyWithin(pa, pb, dist) {
			out = append(out, id)
		}
	}
	return out
}

func anyWithin(a, b []int, dist int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= dist {
			return true
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return false
}

func containsInt(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}
