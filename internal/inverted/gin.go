// Package inverted implements generalized inverted (GIN) indexes over
// documents, reproducing the PostgreSQL jsonb indexing the tutorial
// dissects, plus the full-text posting-list index family (MarkLogic
// universal index / Riak-Solr row of the matrices).
//
// Two GIN modes, exactly as the paper describes (slide "Query Optimization —
// Inverted Index"):
//
//   - OpsMode (jsonb_ops): independent index items for each key and each
//     value in the document. Supports key-exists (?), and containment (@>)
//     by intersecting item posting lists followed by a recheck.
//   - PathOpsMode (jsonb_path_ops): one index item per leaf value — a hash
//     of the value and the key path leading to it. Smaller index, supports
//     only @>, and containment probes match specific structure.
package inverted

import (
	"sort"
	"strconv"

	"repro/internal/mmvalue"
)

// Mode selects the GIN item extraction strategy.
type Mode int

// GIN modes.
const (
	OpsMode     Mode = iota // jsonb_ops: keys and values as separate items
	PathOpsMode             // jsonb_path_ops: hashed path→value items
)

func (m Mode) String() string {
	if m == PathOpsMode {
		return "jsonb_path_ops"
	}
	return "jsonb_ops"
}

// GIN is an inverted index from extracted items to document ids.
type GIN struct {
	mode     Mode
	postings map[string][]string // item -> sorted doc ids
	docs     map[string][]string // doc id -> items (for removal)
}

// NewGIN returns an empty GIN index in the given mode.
func NewGIN(mode Mode) *GIN {
	return &GIN{
		mode:     mode,
		postings: map[string][]string{},
		docs:     map[string][]string{},
	}
}

// Mode returns the index mode.
func (g *GIN) Mode() Mode { return g.mode }

// Items returns the number of distinct index items — the "index size" axis
// of the E3 experiment (path_ops produces fewer items than ops).
func (g *GIN) Items() int { return len(g.postings) }

// extractOps produces jsonb_ops items: every key and every leaf value,
// independently.
func extractOps(doc mmvalue.Value) []string {
	set := map[string]struct{}{}
	var walk func(v mmvalue.Value)
	walk = func(v mmvalue.Value) {
		switch v.Kind() {
		case mmvalue.KindObject:
			for _, f := range v.Fields() {
				set["K:"+f.Name] = struct{}{}
				walk(f.Value)
			}
		case mmvalue.KindArray:
			for _, e := range v.AsArray() {
				walk(e)
			}
		default:
			set["V:"+canonicalScalar(v)] = struct{}{}
		}
	}
	walk(doc)
	items := make([]string, 0, len(set))
	for it := range set {
		items = append(items, it)
	}
	sort.Strings(items)
	return items
}

// extractPathOps produces jsonb_path_ops items: one hashed (path, value)
// item per leaf, with array positions erased so that containment of an
// element at any position matches.
func extractPathOps(doc mmvalue.Value) []string {
	set := map[string]struct{}{}
	var walk func(path string, v mmvalue.Value)
	walk = func(path string, v mmvalue.Value) {
		switch v.Kind() {
		case mmvalue.KindObject:
			if v.Len() == 0 {
				set[hashItem(path, v)] = struct{}{}
				return
			}
			for _, f := range v.Fields() {
				walk(path+"/"+f.Name, f.Value)
			}
		case mmvalue.KindArray:
			if v.Len() == 0 {
				set[hashItem(path, v)] = struct{}{}
				return
			}
			for _, e := range v.AsArray() {
				walk(path, e) // positions erased
			}
		default:
			set[hashItem(path, v)] = struct{}{}
		}
	}
	walk("", doc)
	items := make([]string, 0, len(set))
	for it := range set {
		items = append(items, it)
	}
	sort.Strings(items)
	return items
}

func canonicalScalar(v mmvalue.Value) string {
	// Integral floats canonicalize to their int form so 1 and 1.0 share an
	// item, matching mmvalue equality.
	if v.Kind() == mmvalue.KindFloat {
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return "int:" + mmvalue.Int(int64(f)).String()
		}
	}
	return v.Kind().String() + ":" + v.String()
}

func hashItem(path string, v mmvalue.Value) string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * prime
	}
	h = (h ^ 0xff) * prime
	s := canonicalScalar(v)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return strconv.FormatUint(h, 36)
}

func (g *GIN) extract(doc mmvalue.Value) []string {
	if g.mode == PathOpsMode {
		return extractPathOps(doc)
	}
	return extractOps(doc)
}

// Add indexes doc under id, replacing any previous posting for id.
func (g *GIN) Add(id string, doc mmvalue.Value) {
	if _, ok := g.docs[id]; ok {
		g.Remove(id)
	}
	items := g.extract(doc)
	g.docs[id] = items
	for _, it := range items {
		g.postings[it] = insertSorted(g.postings[it], id)
	}
}

// Remove drops all postings of a document id.
func (g *GIN) Remove(id string) {
	items, ok := g.docs[id]
	if !ok {
		return
	}
	delete(g.docs, id)
	for _, it := range items {
		g.postings[it] = removeSorted(g.postings[it], id)
		if len(g.postings[it]) == 0 {
			delete(g.postings, it)
		}
	}
}

// CandidatesContains returns ids possibly satisfying doc @> pattern. The
// caller must recheck with mmvalue.Contains (GIN is lossy in both modes:
// ops loses key/value association, path_ops hashes).
func (g *GIN) CandidatesContains(pattern mmvalue.Value) []string {
	var itemLists [][]string
	if g.mode == PathOpsMode {
		items := extractPathOps(pattern)
		for _, it := range items {
			itemLists = append(itemLists, g.postings[it])
		}
	} else {
		items := extractOps(pattern)
		for _, it := range items {
			itemLists = append(itemLists, g.postings[it])
		}
	}
	if len(itemLists) == 0 {
		// Empty pattern ({}): every document matches; return all ids.
		ids := make([]string, 0, len(g.docs))
		for id := range g.docs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return ids
	}
	return intersectAll(itemLists)
}

// CandidatesHasKey returns ids of documents possibly having the top-level
// key. Only supported in OpsMode — the paper's point that jsonb_path_ops
// cannot serve the ? operator. The boolean reports support.
func (g *GIN) CandidatesHasKey(key string) ([]string, bool) {
	if g.mode == PathOpsMode {
		return nil, false
	}
	return g.postings["K:"+key], true
}

// CandidatesHasAnyKey serves the ?| operator (union); OpsMode only.
func (g *GIN) CandidatesHasAnyKey(keys []string) ([]string, bool) {
	if g.mode == PathOpsMode {
		return nil, false
	}
	var out []string
	for _, k := range keys {
		out = unionSorted(out, g.postings["K:"+k])
	}
	return out, true
}

// CandidatesHasAllKeys serves the ?& operator (intersection); OpsMode only.
func (g *GIN) CandidatesHasAllKeys(keys []string) ([]string, bool) {
	if g.mode == PathOpsMode {
		return nil, false
	}
	lists := make([][]string, len(keys))
	for i, k := range keys {
		lists[i] = g.postings["K:"+k]
	}
	return intersectAll(lists), true
}

func insertSorted(list []string, id string) []string {
	i := sort.SearchStrings(list, id)
	if i < len(list) && list[i] == id {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

func removeSorted(list []string, id string) []string {
	i := sort.SearchStrings(list, id)
	if i < len(list) && list[i] == id {
		return append(list[:i], list[i+1:]...)
	}
	return list
}

func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectAll intersects posting lists smallest-first (the standard GIN
// evaluation order).
func intersectAll(lists [][]string) []string {
	if len(lists) == 0 {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		if len(out) == 0 {
			return nil
		}
		out = intersectSorted(out, l)
	}
	return out
}
