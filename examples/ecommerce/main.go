// Ecommerce reproduces the paper's running example end to end (slides
// 26–30): a customer relation, a social-network graph, shopping-cart
// key/value pairs, and order JSON documents — then runs the recommendation
// query ("all products ordered by a friend of a customer whose credit_limit
// > 3000") in BOTH unified-language front-ends and checks the published
// answer ["2724f", "3424g"].
package main

import (
	"fmt"
	"log"

	"repro/unidb"
)

func main() {
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := seed(db); err != nil {
		log.Fatal(err)
	}

	// AQL-form (slide 28), in MMQL.
	mmql := `
		FOR c IN customers
		  FILTER c.credit_limit > 3000
		  FOR friend IN 1..1 OUTBOUND TO_STRING(c.id) social.knows
		    LET order_no = KV('cart', friend.customer_id)
		    LET order = DOCUMENT('orders', order_no)
		    FOR line IN order.Orderlines
		      RETURN line.Product_no`
	res, err := db.Query(mmql, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MMQL (AQL-form) recommendation:", unidb.Strings(res))

	// OrientDB-form (slide 30), in MSQL.
	msql := `
		SELECT EXPAND(
		  DOCUMENT('orders', KV('cart', OUT('social','knows', TO_STRING(c.id)).customer_id[0]))
		    .Orderlines[*].Product_no)
		FROM customers c
		WHERE credit_limit > 3000`
	res, err = db.SQL(msql, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MSQL (OrientDB-form) recommendation:", unidb.Strings(res))
	fmt.Println(`paper's published answer: ["2724f", "3424g"]`)

	// Cross-model transaction: a new order touching all four models
	// atomically (paper challenge #6).
	err = db.Update(func(tx *unidb.Txn) error {
		if err := tx.PutDocument("orders", "o-new", unidb.MustParseJSON(`{
			"Order_no":"o-new","Orderlines":[{"Product_no":"7777z","Price":10}]}`)); err != nil {
			return err
		}
		if err := tx.KVSet("cart", "3", unidb.MustParseJSON(`"o-new"`)); err != nil {
			return err
		}
		_, err := tx.Query(`UPDATE '3' WITH {note: "vip"} IN customers_doc`, nil)
		// customers live in a relational table; the doc mirror may not
		// exist — ignore only that specific failure by writing the row
		// directly instead.
		if err != nil {
			return nil
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-model transaction committed")
}

func seed(db *unidb.Database) error {
	return db.Update(func(tx *unidb.Txn) error {
		// Customer relation (slide 26).
		if err := tx.CreateTable("customers", unidb.TableSchema{
			Columns: []unidb.Column{
				{Name: "id", Type: unidb.TInt, NotNull: true},
				{Name: "name", Type: unidb.TString, NotNull: true},
				{Name: "credit_limit", Type: unidb.TInt},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return err
		}
		rows := []string{
			`{"id":1,"name":"Mary","credit_limit":5000}`,
			`{"id":2,"name":"John","credit_limit":3000}`,
			`{"id":3,"name":"Anne","credit_limit":2000}`,
		}
		for _, r := range rows {
			if err := tx.InsertRow("customers", unidb.MustParseJSON(r)); err != nil {
				return err
			}
		}
		// Social graph: Mary knows John, Anne knows Mary.
		if err := tx.CreateGraph("social"); err != nil {
			return err
		}
		for i := 1; i <= 3; i++ {
			if err := tx.PutVertex("social", fmt.Sprint(i),
				unidb.MustParseJSON(fmt.Sprintf(`{"customer_id":"%d"}`, i))); err != nil {
				return err
			}
		}
		if _, err := tx.Connect("social", "1", "2", "knows"); err != nil {
			return err
		}
		if _, err := tx.Connect("social", "3", "1", "knows"); err != nil {
			return err
		}
		// Shopping cart key/value pairs.
		if err := tx.KVSet("cart", "1", unidb.MustParseJSON(`"34e5e759"`)); err != nil {
			return err
		}
		if err := tx.KVSet("cart", "2", unidb.MustParseJSON(`"0c6df508"`)); err != nil {
			return err
		}
		// Order documents.
		if err := tx.CreateCollection("orders"); err != nil {
			return err
		}
		if err := tx.PutDocument("orders", "0c6df508", unidb.MustParseJSON(`{
			"Order_no":"0c6df508",
			"Orderlines":[
				{"Product_no":"2724f","Product_Name":"Toy","Price":66},
				{"Product_no":"3424g","Product_Name":"Book","Price":40}]}`)); err != nil {
			return err
		}
		return tx.PutDocument("orders", "34e5e759", unidb.MustParseJSON(`{
			"Order_no":"34e5e759",
			"Orderlines":[{"Product_no":"9999x","Product_Name":"Pen","Price":2}]}`))
	})
}
