// Social demonstrates graph analytics mixed with document filters: a small
// social network where vertices are rich documents, traversed and
// aggregated with the unified query language.
package main

import (
	"fmt"
	"log"

	"repro/unidb"
)

func main() {
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := seed(db); err != nil {
		log.Fatal(err)
	}

	// Friends-of-friends (depth 2), excluding direct friends.
	res, err := db.Query(`
		FOR v IN 2..2 OUTBOUND 'alice' net.follows
		  RETURN v.name`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice's friends-of-friends:", unidb.Strings(res))

	// Shortest path through the network.
	err = db.View(func(tx *unidb.Txn) error {
		path, err := tx.ShortestPath("net", "alice", "erin")
		if err != nil {
			return err
		}
		fmt.Println("shortest path alice -> erin:", path)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mixed graph + document predicate: reachable people who like Go,
	// grouped by city.
	res, err = db.Query(`
		FOR v IN 1..3 OUTBOUND 'alice' net.follows
		  FILTER 'go' IN v.interests
		  COLLECT city = v.city INTO g
		  SORT city
		  RETURN {city: city, people: g[*].v.name}`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("go fans reachable from alice, by city:")
	for _, v := range res.Values {
		fmt.Printf("  %s: %v\n", v.GetOr("city").AsString(), v.GetOr("people"))
	}

	// Degree statistics via MSQL over the vertex set.
	res, err = db.SQL(`
		SELECT city, COUNT(*) AS n FROM net v GROUP BY v.city ORDER BY n DESC, city`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("population by city (MSQL):")
	for _, v := range res.Values {
		fmt.Printf("  %-10s %d\n", v.GetOr("city").AsString(), v.GetOr("n").AsInt())
	}
}

func seed(db *unidb.Database) error {
	people := map[string]string{
		"alice": `{"name":"Alice","city":"Helsinki","interests":["go","graphs"]}`,
		"bob":   `{"name":"Bob","city":"Prague","interests":["sql"]}`,
		"carol": `{"name":"Carol","city":"Prague","interests":["go"]}`,
		"dave":  `{"name":"Dave","city":"Helsinki","interests":["go","xml"]}`,
		"erin":  `{"name":"Erin","city":"Berlin","interests":["rdf"]}`,
	}
	follows := [][2]string{
		{"alice", "bob"}, {"alice", "carol"},
		{"bob", "dave"}, {"carol", "dave"}, {"dave", "erin"},
	}
	return db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateGraph("net"); err != nil {
			return err
		}
		for key, doc := range people {
			if err := tx.PutVertex("net", key, unidb.MustParseJSON(doc)); err != nil {
				return err
			}
		}
		for _, e := range follows {
			if _, err := tx.Connect("net", e[0], e[1], "follows"); err != nil {
				return err
			}
		}
		return nil
	})
}
