// Quickstart: open an in-memory multi-model database, store documents,
// rows, key/value pairs, and graph edges, and query them together.
package main

import (
	"fmt"
	"log"

	"repro/unidb"
)

func main() {
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Create a collection and insert documents through MMQL DML.
	err = db.Update(func(tx *unidb.Txn) error {
		return tx.CreateCollection("products")
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, doc := range []string{
		`{_key: "p1", name: "Toy", price: 66, tags: ["kids"]}`,
		`{_key: "p2", name: "Book", price: 40, tags: ["read"]}`,
		`{_key: "p3", name: "Computer", price: 34, tags: ["tech", "kids"]}`,
	} {
		if _, err := db.Execute(`INSERT `+doc+` INTO products`, nil); err != nil {
			log.Fatal(err)
		}
	}

	// MMQL: AQL-flavored.
	res, err := db.Query(`
		FOR p IN products
		  FILTER p.price > 35
		  SORT p.price DESC
		  RETURN CONCAT(p.name, ' ($', TO_STRING(p.price), ')')`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MMQL results:")
	for _, v := range res.Values {
		fmt.Println("  ", v.AsString())
	}

	// MSQL: SQL-flavored, same engine.
	res, err = db.SQL(`SELECT name, price FROM products WHERE p @> {tags: ['kids']} ORDER BY price`, nil)
	if err != nil {
		// The alias defaults to the source name; rewrite with alias p.
		res, err = db.SQL(`SELECT name, price FROM products p WHERE p @> {tags: ['kids']} ORDER BY price`, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("MSQL results:")
	for _, v := range res.Values {
		fmt.Printf("  %s: %d\n", v.GetOr("name").AsString(), v.GetOr("price").AsInt())
	}

	// A parameterized query.
	res, err = db.Query(`FOR p IN products FILTER p.price < @max RETURN p.name`,
		map[string]unidb.Value{"max": unidb.MustParseJSON(`50`)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("under 50:", unidb.Strings(res))
}
