// Polyglot-migration demonstrates the paper's model-evolution story: legacy
// relational data migrates into documents, a graph, and RDF triples inside
// one database — the alternative to polyglot persistence across separate
// systems — and old-schema documents upgrade lazily on read.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/mmvalue"
	"repro/internal/relstore"
	"repro/unidb"
)

func main() {
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	core := db.Core()
	m := &evolution.Migrator{Docs: core.Docs, Rels: core.Rels, Graphs: core.Graphs, RDF: core.RDF}

	// Legacy relational data.
	err = core.Engine.Update(func(tx *engine.Txn) error {
		if err := core.Rels.CreateTable(tx, "legacy_customers", relstore.TableSchema{
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt, NotNull: true},
				{Name: "name", Type: relstore.TString},
				{Name: "referrer", Type: relstore.TString},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return err
		}
		rows := []string{
			`{"id":1,"name":"Mary","referrer":""}`,
			`{"id":2,"name":"John","referrer":"1"}`,
			`{"id":3,"name":"Anne","referrer":"1"}`,
		}
		for _, r := range rows {
			if err := core.Rels.Insert(tx, "legacy_customers", mmvalue.MustParseJSON(r)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: relational -> documents (slide 94's arrow).
	err = core.Engine.Update(func(tx *engine.Txn) error {
		n, err := m.TableToCollection(tx, "legacy_customers", "customers_v2")
		fmt.Printf("migrated %d rows to documents\n", n)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: documents -> graph along the referrer field.
	err = core.Engine.Update(func(tx *engine.Txn) error {
		v, e, err := m.CollectionToGraph(tx, "customers_v2", "referrals", "referrer", "referred_by")
		fmt.Printf("built referral graph: %d vertices, %d edges\n", v, e)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: documents -> RDF knowledge graph.
	err = core.Engine.Update(func(tx *engine.Txn) error {
		n, err := m.CollectionToTriples(tx, "customers_v2", "kg", "cust:")
		fmt.Printf("exported %d documents as RDF triples\n", n)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same data is now queryable in three models.
	res, err := db.Query(`
		FOR v IN 1..1 INBOUND '1' referrals.referred_by
		  RETURN v.name`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers referred by Mary (graph):", unidb.Strings(res))

	res, err = db.Query(`FOR t IN TRIPLES('kg', '<cust:2>', null, null) RETURN CONCAT(t.p, '=', t.o)`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("John in the knowledge graph (RDF):", unidb.Strings(res))

	// Step 4: lazy schema evolution — v1 documents split "name" on read.
	v := &evolution.Versioned{
		Docs: core.Docs, Coll: "customers_v2", Target: 1,
		Migrations: []evolution.Migration{{
			From: 0,
			Upgrade: func(doc mmvalue.Value) mmvalue.Value {
				return doc.Set("display_name",
					mmvalue.String("Customer "+doc.GetOr("name").AsString()))
			},
		}},
	}
	err = core.Engine.Update(func(tx *engine.Txn) error {
		doc, _, err := v.Get(tx, "3")
		if err != nil {
			return err
		}
		fmt.Println("lazily upgraded document:", doc)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
