package repro

// One benchmark per experiment of DESIGN.md's per-experiment index
// (E1–E17). Each reproduces a table, figure, or worked example of the
// EDBT 2017 tutorial; EXPERIMENTS.md records the measured shapes.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/engine"
	"repro/internal/evolution"
	"repro/internal/exthash"
	"repro/internal/graphstore"
	"repro/internal/inverted"
	"repro/internal/kvstore"
	"repro/internal/mmindex"
	"repro/internal/mmvalue"
	"repro/internal/query"
	"repro/internal/rdfstore"
	"repro/internal/relstore"
	"repro/internal/shard"
	"repro/internal/sinew"
	"repro/internal/unibench"
)

func openDB(b *testing.B) *core.DB {
	b.Helper()
	db, err := core.Open(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func mustUpdate(b *testing.B, db *core.DB, fn func(tx *engine.Txn) error) {
	b.Helper()
	if err := db.Engine.Update(fn); err != nil {
		b.Fatal(err)
	}
}

// seedPaper loads the slide-26 running example.
func seedPaper(b *testing.B, db *core.DB) {
	b.Helper()
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.Rels.CreateTable(tx, "customers", relstore.TableSchema{
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt, NotNull: true},
				{Name: "name", Type: relstore.TString},
				{Name: "credit_limit", Type: relstore.TInt},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return err
		}
		for _, c := range []struct {
			id     int64
			name   string
			credit int64
		}{{1, "Mary", 5000}, {2, "John", 3000}, {3, "Anne", 2000}} {
			if err := db.Rels.Insert(tx, "customers", mmvalue.Object(
				mmvalue.F("id", mmvalue.Int(c.id)),
				mmvalue.F("name", mmvalue.String(c.name)),
				mmvalue.F("credit_limit", mmvalue.Int(c.credit)))); err != nil {
				return err
			}
		}
		if err := db.CreateGraph(tx, "social"); err != nil {
			return err
		}
		for _, v := range []string{"1", "2", "3"} {
			if err := db.Graphs.PutVertex(tx, "social", v, mmvalue.Object(
				mmvalue.F("customer_id", mmvalue.String(v)))); err != nil {
				return err
			}
		}
		db.Graphs.Connect(tx, "social", "1", "2", "knows", mmvalue.Null)
		db.Graphs.Connect(tx, "social", "3", "1", "knows", mmvalue.Null)
		db.KV.Set(tx, "cart", "1", mmvalue.String("34e5e759"))
		db.KV.Set(tx, "cart", "2", mmvalue.String("0c6df508"))
		if err := db.Docs.CreateCollection(tx, "orders", catalog.Schemaless); err != nil {
			return err
		}
		db.Docs.Put(tx, "orders", "0c6df508", mmvalue.MustParseJSON(`{
			"Order_no":"0c6df508","Orderlines":[
			{"Product_no":"2724f","Product_Name":"Toy","Price":66},
			{"Product_no":"3424g","Product_Name":"Book","Price":40}]}`))
		return db.Docs.Put(tx, "orders", "34e5e759", mmvalue.MustParseJSON(`{
			"Order_no":"34e5e759","Orderlines":[
			{"Product_no":"9999x","Product_Name":"Pen","Price":2}]}`))
	})
}

// --- E1: the recommendation query, both front-ends ---

func BenchmarkE1RecommendationQuery(b *testing.B) {
	mmql := `
		FOR c IN customers
		  FILTER c.credit_limit > 3000
		  FOR friend IN 1..1 OUTBOUND TO_STRING(c.id) social.knows
		    LET order = DOCUMENT('orders', KV('cart', friend.customer_id))
		    FOR line IN order.Orderlines
		      RETURN line.Product_no`
	msql := `
		SELECT EXPAND(
		  DOCUMENT('orders', KV('cart', OUT('social','knows', TO_STRING(c.id)).customer_id[0]))
		    .Orderlines[*].Product_no)
		FROM customers c WHERE credit_limit > 3000`
	for _, fe := range []struct {
		name string
		run  func(db *core.DB) (*query.Result, error)
	}{
		{"MMQL", func(db *core.DB) (*query.Result, error) { return db.Query(mmql, nil) }},
		{"MSQL", func(db *core.DB) (*query.Result, error) { return db.SQL(msql, nil) }},
	} {
		b.Run(fe.name, func(b *testing.B) {
			db := openDB(b)
			seedPaper(b, db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fe.run(db)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Values) != 2 {
					b.Fatalf("result = %v", res.Values)
				}
			}
		})
	}
}

// --- E2: JSON inside relational rows (PostgreSQL JSONB row of the matrix) ---

func BenchmarkE2JSONInRelational(b *testing.B) {
	db := openDB(b)
	const n = 2000
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.Rels.CreateTable(tx, "customer", relstore.TableSchema{
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt, NotNull: true},
				{Name: "orders", Type: relstore.TJSONB},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			orders := mmvalue.MustParseJSON(fmt.Sprintf(
				`{"Order_no":"ord%d","Orderlines":[{"Product_no":"p%d","Price":%d}]}`,
				i, i%100, i%200))
			if err := db.Rels.Insert(tx, "customer", mmvalue.Object(
				mmvalue.F("id", mmvalue.Int(int64(i))),
				mmvalue.F("orders", orders))); err != nil {
				return err
			}
		}
		return nil
	})
	q := `SELECT id, orders->>'Order_no' AS o FROM customer c WHERE orders->>'Order_no' = 'ord500'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.SQL(q, nil)
		if err != nil || len(res.Values) != 1 {
			b.Fatalf("res = %v err = %v", res, err)
		}
	}
}

// --- E3: GIN jsonb_ops vs jsonb_path_ops vs no index ---

func seedGINDocs(b *testing.B, db *core.DB, n int) mmvalue.Value {
	b.Helper()
	r := rand.New(rand.NewSource(3))
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.Docs.CreateCollection(tx, "gdocs", catalog.Schemaless); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			doc := mmvalue.MustParseJSON(fmt.Sprintf(
				`{"_key":"d%d","user":"u%d","tags":["t%d","t%d"],"addr":{"city":"c%d"}}`,
				i, r.Intn(200), r.Intn(30), r.Intn(30), r.Intn(50)))
			if _, err := db.Docs.Insert(tx, "gdocs", doc); err != nil {
				return err
			}
		}
		return nil
	})
	return mmvalue.MustParseJSON(`{"tags":["t7"],"addr":{"city":"c3"}}`)
}

func BenchmarkE3GIN(b *testing.B) {
	const n = 3000
	cases := []struct {
		name  string
		setup func(db *core.DB)
		opts  query.Options
	}{
		{"NoIndex", func(db *core.DB) {}, query.Options{DisableIndexes: true}},
		{"JsonbOps", func(db *core.DB) {
			if err := db.CreateGIN("gdocs", inverted.OpsMode); err != nil {
				b.Fatal(err)
			}
		}, query.Options{}},
		{"JsonbPathOps", func(db *core.DB) {
			if err := db.CreateGIN("gdocs", inverted.PathOpsMode); err != nil {
				b.Fatal(err)
			}
		}, query.Options{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := openDB(b)
			pattern := seedGINDocs(b, db, n)
			c.setup(db)
			q := `FOR d IN gdocs FILTER d @> @p RETURN d._key`
			params := map[string]mmvalue.Value{"p": pattern}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryOpts(q, params, c.opts); err != nil {
					b.Fatal(err)
				}
			}
			// After the loop: ResetTimer would clear extra metrics.
			if items := db.GINItems("gdocs"); items > 0 {
				b.ReportMetric(float64(items), "index-items")
			}
		})
	}
}

// --- E4: B+tree vs extendible hashing (point lookup and range scan) ---

func BenchmarkE4PointLookup(b *testing.B) {
	const n = 100000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	b.Run("BTree", func(b *testing.B) {
		t := btree.New()
		for i, k := range keys {
			t.Put(k, keys[i])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := t.Get(keys[i%n]); !ok {
				b.Fatal("missing")
			}
		}
	})
	b.Run("ExtHash", func(b *testing.B) {
		h := exthash.New()
		for i, k := range keys {
			h.Put(k, keys[i])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := h.Get(keys[i%n]); !ok {
				b.Fatal("missing")
			}
		}
	})
}

func BenchmarkE4RangeScan(b *testing.B) {
	const n = 100000
	const window = 100
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	b.Run("BTree", func(b *testing.B) {
		t := btree.New()
		for i, k := range keys {
			t.Put(k, keys[i])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			t.Scan(keys[i%(n-window)], nil, func(k, v []byte) bool {
				count++
				return count < window
			})
			if count != window {
				b.Fatal("short scan")
			}
		}
	})
	// Hash indexes have no ordered scan: the only way to answer a range
	// query is a full walk with a filter — the E4 punchline.
	b.Run("ExtHashFullWalk", func(b *testing.B) {
		h := exthash.New()
		for i, k := range keys {
			h.Put(k, keys[i])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := string(keys[i%(n-window)])
			hi := string(keys[i%(n-window)+window])
			count := 0
			h.Range(func(k, v []byte) bool {
				if s := string(k); s >= lo && s < hi {
					count++
				}
				return true
			})
			if count != window {
				b.Fatalf("count = %d", count)
			}
		}
	})
}

// --- E5: bitslice aggregation vs row scan ---

func BenchmarkE5Bitslice(b *testing.B) {
	const n = 200000
	r := rand.New(rand.NewSource(5))
	values := make([]uint64, n)
	region := make([]string, n)
	regions := []string{"EU", "US", "APAC"}
	for i := range values {
		values[i] = uint64(r.Intn(10000))
		region[i] = regions[r.Intn(3)]
	}
	bs := bitmapidx.NewBitslice()
	bm := bitmapidx.NewBitmap()
	for i, v := range values {
		bs.Add(i, v)
		bm.Add(region[i], i)
	}
	b.Run("BitsliceSum", func(b *testing.B) {
		sel := bm.Eq("EU")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.Sum(sel)
		}
	})
	b.Run("RowScanSum", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var total uint64
			for j, v := range values {
				if region[j] == "EU" {
					total += v
				}
			}
			_ = total
		}
	})
}

// --- E6: Vertica flex tables — virtual vs materialized columns ---

func BenchmarkE6FlexTable(b *testing.B) {
	const n = 20000
	build := func() *sinew.Relation {
		rel := sinew.New()
		r := rand.New(rand.NewSource(6))
		for i := 0; i < n; i++ {
			rel.Insert(mmvalue.MustParseJSON(fmt.Sprintf(
				`{"user":"u%d","score":%d,"extra":{"a":%d,"b":"x%d"}}`,
				r.Intn(500), r.Intn(100), i, i%7)))
		}
		return rel
	}
	b.Run("VirtualColumn", func(b *testing.B) {
		rel := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.Select("score", sinew.Gt(mmvalue.Int(90)))
		}
	})
	b.Run("MaterializedColumn", func(b *testing.B) {
		rel := build()
		if err := rel.Materialize("score"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.Select("score", sinew.Gt(mmvalue.Int(90)))
		}
	})
}

// --- E7–E9: UniBench workloads ---

func seedUnibench(b *testing.B, db *core.DB) unibench.Config {
	b.Helper()
	cfg := unibench.Config{
		Customers: 500, Products: 200, OrdersPerCustomer: 3,
		FriendsPerCustomer: 4, MaxLinesPerOrder: 4, Seed: 42,
	}
	if _, err := unibench.Generate(db, cfg); err != nil {
		b.Fatal(err)
	}
	return cfg
}

func BenchmarkE7WorkloadA(b *testing.B) {
	type op struct {
		name string
		run  func(db *core.DB, i int) error
	}
	setup := func(db *core.DB) {
		mustUpdate(b, db, func(tx *engine.Txn) error {
			if err := db.Docs.CreateCollection(tx, "wa", catalog.Schemaless); err != nil {
				return err
			}
			if err := db.Rels.CreateTable(tx, "war", relstore.TableSchema{
				Columns:    []relstore.Column{{Name: "id", Type: relstore.TInt, NotNull: true}},
				PrimaryKey: []string{"id"},
			}); err != nil {
				return err
			}
			return db.CreateGraph(tx, "wag")
		})
	}
	ops := []op{
		{"KVInsert", func(db *core.DB, i int) error {
			return db.Engine.Update(func(tx *engine.Txn) error {
				return db.KV.Set(tx, "b", fmt.Sprintf("k%d", i), mmvalue.Int(int64(i)))
			})
		}},
		{"DocInsert", func(db *core.DB, i int) error {
			return db.Engine.Update(func(tx *engine.Txn) error {
				_, err := db.Docs.Insert(tx, "wa", mmvalue.Object(
					mmvalue.F("_key", mmvalue.String(fmt.Sprintf("d%d", i))),
					mmvalue.F("n", mmvalue.Int(int64(i)))))
				return err
			})
		}},
		{"RelInsert", func(db *core.DB, i int) error {
			return db.Engine.Update(func(tx *engine.Txn) error {
				return db.Rels.Insert(tx, "war", mmvalue.Object(mmvalue.F("id", mmvalue.Int(int64(i)))))
			})
		}},
		{"GraphInsert", func(db *core.DB, i int) error {
			return db.Engine.Update(func(tx *engine.Txn) error {
				return db.Graphs.PutVertex(tx, "wag", fmt.Sprintf("v%d", i), mmvalue.Object())
			})
		}},
	}
	for _, o := range ops {
		b.Run(o.name, func(b *testing.B) {
			db := openDB(b)
			setup(db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.run(db, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("KVRead", func(b *testing.B) {
		db := openDB(b)
		setup(db)
		mustUpdate(b, db, func(tx *engine.Txn) error {
			for i := 0; i < 10000; i++ {
				if err := db.KV.Set(tx, "b", fmt.Sprintf("k%d", i), mmvalue.Int(int64(i))); err != nil {
					return err
				}
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				_, _, err := db.KV.Get(tx, "b", fmt.Sprintf("k%d", i%10000))
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE8WorkloadB(b *testing.B) {
	db := openDB(b)
	cfg := seedUnibench(b, db)
	_ = cfg
	params := map[string]map[string]mmvalue.Value{
		"Q1": {"minCredit": mmvalue.Int(8000), "anchors": mmvalue.Int(20)},
		"Q2": {"country": mmvalue.String("FI")},
		"Q3": nil,
		"Q4": {"pattern": mmvalue.MustParseJSON(`{"Orderlines":[{"Product_no":"p1"}]}`)},
		"Q5": {"start": mmvalue.String("c0")},
	}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4", "Q5"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(unibench.QueryB[name], params[name]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE9WorkloadC(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("Workers%d", workers), func(b *testing.B) {
			db := openDB(b)
			cfg := seedUnibench(b, db)
			perWorker := b.N/workers + 1
			b.ResetTimer()
			m, err := unibench.RunWorkloadC(db, cfg, workers, perWorker)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(m.Throughput(), "txn/s")
			b.ReportMetric(float64(m.Aborted), "aborted")
		})
	}
}

// --- E10: Sinew universal relation over schemaless data ---

func BenchmarkE10Sinew(b *testing.B) {
	const n = 20000
	rel := sinew.New()
	r := rand.New(rand.NewSource(10))
	shapes := []string{
		`{"kind":"click","page":"p%d","ms":%d}`,
		`{"kind":"buy","sku":"s%d","price":%d}`,
		`{"kind":"view","page":"p%d","dwell":{"ms":%d}}`,
	}
	for i := 0; i < n; i++ {
		rel.Insert(mmvalue.MustParseJSON(fmt.Sprintf(shapes[i%3], r.Intn(100), r.Intn(1000))))
	}
	b.Run("VirtualSelect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel.Select("kind", sinew.Eq(mmvalue.String("buy")))
		}
	})
	b.Run("AfterAutoMaterialize", func(b *testing.B) {
		rel.AutoMaterialize(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.Select("kind", sinew.Eq(mmvalue.String("buy")))
		}
	})
}

// --- E11: model evolution throughput ---

func BenchmarkE11Evolution(b *testing.B) {
	db := openDB(b)
	const n = 2000
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.Rels.CreateTable(tx, "legacy", relstore.TableSchema{
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt, NotNull: true},
				{Name: "v", Type: relstore.TString},
			},
			PrimaryKey: []string{"id"},
		}); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := db.Rels.Insert(tx, "legacy", mmvalue.Object(
				mmvalue.F("id", mmvalue.Int(int64(i))),
				mmvalue.F("v", mmvalue.String("x")))); err != nil {
				return err
			}
		}
		return nil
	})
	m := &evolution.Migrator{Docs: db.Docs, Rels: db.Rels, Graphs: db.Graphs, RDF: db.RDF}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll := fmt.Sprintf("mig%d", i)
		err := db.Engine.Update(func(tx *engine.Txn) error {
			_, err := m.TableToCollection(tx, "legacy", coll)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		mustUpdate(b, db, func(tx *engine.Txn) error { return db.Docs.DropCollection(tx, coll) })
		b.StartTimer()
	}
	b.ReportMetric(float64(n), "rows/op")
}

// --- E12: hybrid consistency — STRONG primary reads vs EVENTUAL replica ---

func BenchmarkE12Consistency(b *testing.B) {
	db := openDB(b)
	mustUpdate(b, db, func(tx *engine.Txn) error {
		for i := 0; i < 10000; i++ {
			if err := db.KV.Set(tx, "b", fmt.Sprintf("k%d", i), mmvalue.Int(int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	replica := db.Engine.NewReplica(0)
	b.Run("StrongPrimary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				_, _, err := db.KV.Get(tx, "b", fmt.Sprintf("k%d", i%10000))
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EventualReplica", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := replica.Get("kv:b", []byte(fmt.Sprintf("k%d", i%10000))); !ok {
				b.Fatal("missing")
			}
		}
	})
}

// --- E13: multi-model join index vs on-the-fly cross-model join ---

func BenchmarkE13MultiModelIndex(b *testing.B) {
	db := openDB(b)
	const customers = 1000
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.CreateGraph(tx, "social"); err != nil {
			return err
		}
		for i := 0; i < customers; i++ {
			key := fmt.Sprintf("c%d", i)
			if err := db.Graphs.PutVertex(tx, "social", key, mmvalue.Object()); err != nil {
				return err
			}
			if err := db.KV.Set(tx, "cart", key, mmvalue.String(fmt.Sprintf("o%d", i))); err != nil {
				return err
			}
			if err := db.KV.Set(tx, "ordertotals", fmt.Sprintf("o%d", i), mmvalue.Int(int64(i))); err != nil {
				return err
			}
		}
		r := rand.New(rand.NewSource(13))
		for i := 0; i < customers; i++ {
			for f := 0; f < 4; f++ {
				other := r.Intn(customers)
				if other == i {
					continue
				}
				if _, err := db.Graphs.Connect(tx, "social",
					fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", other), "knows", mmvalue.Null); err != nil {
					return err
				}
			}
		}
		return nil
	})
	hops := []mmindex.Hop{
		{
			Name:      "friends",
			Keyspaces: []string{graphstore.OutKeyspace("social")},
			Follow: func(tx engine.Tx, in mmvalue.Value) ([]mmvalue.Value, error) {
				ns, err := db.Graphs.Neighbors(tx, "social", in.AsString(), graphstore.Outbound, "knows")
				if err != nil {
					return nil, err
				}
				out := make([]mmvalue.Value, len(ns))
				for i, n := range ns {
					out[i] = mmvalue.String(n.VertexKey)
				}
				return out, nil
			},
		},
		{
			Name:      "cart",
			Keyspaces: []string{kvstore.Keyspace("cart")},
			Follow: func(tx engine.Tx, in mmvalue.Value) ([]mmvalue.Value, error) {
				v, ok, err := db.KV.Get(tx, "cart", in.AsString())
				if err != nil || !ok {
					return nil, err
				}
				return []mmvalue.Value{v}, nil
			},
		},
		{
			Name:      "total",
			Keyspaces: []string{kvstore.Keyspace("ordertotals")},
			Follow: func(tx engine.Tx, in mmvalue.Value) ([]mmvalue.Value, error) {
				v, ok, err := db.KV.Get(tx, "ordertotals", in.AsString())
				if err != nil || !ok {
					return nil, err
				}
				return []mmvalue.Value{v}, nil
			},
		},
	}
	joinOnTheFly := func(tx *engine.Txn, anchor string) (int64, error) {
		var sum int64
		ns, err := db.Graphs.Neighbors(tx, "social", anchor, graphstore.Outbound, "knows")
		if err != nil {
			return 0, err
		}
		for _, n := range ns {
			orderNo, ok, err := db.KV.Get(tx, "cart", n.VertexKey)
			if err != nil || !ok {
				continue
			}
			total, ok, err := db.KV.Get(tx, "ordertotals", orderNo.AsString())
			if err != nil || !ok {
				continue
			}
			sum += total.AsInt()
		}
		return sum, nil
	}
	b.Run("OnTheFlyJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				_, err := joinOnTheFly(tx, fmt.Sprintf("c%d", i%customers))
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JoinIndex", func(b *testing.B) {
		idx := mmindex.New(db.Engine, hops)
		mustUpdate(b, db, func(tx *engine.Txn) error {
			for i := 0; i < customers; i++ {
				key := fmt.Sprintf("c%d", i)
				if err := idx.Put(tx, key, mmvalue.String(key)); err != nil {
					return err
				}
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("c%d", i%customers)
			err := db.Engine.View(func(tx *engine.Txn) error {
				vals, ok, err := idx.Lookup(tx, key, mmvalue.String(key))
				if err != nil || !ok {
					return fmt.Errorf("lookup %s: %v %v", key, ok, err)
				}
				var sum int64
				for _, v := range vals {
					sum += v.AsInt()
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E14: XPath with path range index vs tree walk ---

func BenchmarkE14XPath(b *testing.B) {
	db := openDB(b)
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, `<product no="p%d"><name>item %d</name><price>%d</price></product>`, i, i, i%300)
	}
	sb.WriteString("</catalog>")
	mustUpdate(b, db, func(tx *engine.Txn) error {
		return db.XML.LoadXML(tx, "catalog", []byte(sb.String()))
	})
	b.Run("TreeWalkXPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				nodes, err := db.XML.XPath(tx, "catalog", `/catalog/product[@no='p777']/name`)
				if err != nil || len(nodes) != 1 {
					return fmt.Errorf("nodes = %d, %v", len(nodes), err)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PathRangeIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				labels, err := db.XML.PathLookup(tx, "catalog", "/catalog/product/@no", mmvalue.String("p777"))
				if err != nil || len(labels) != 1 {
					return fmt.Errorf("labels = %d, %v", len(labels), err)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E15: full-text index vs naive CONTAINS scan ---

func BenchmarkE15FullText(b *testing.B) {
	db := openDB(b)
	const n = 5000
	r := rand.New(rand.NewSource(15))
	words := []string{"graph", "database", "query", "index", "model", "json", "xml", "fast", "toy", "book"}
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.Docs.CreateCollection(tx, "texts", catalog.Schemaless); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var t []string
			for w := 0; w < 8; w++ {
				t = append(t, words[r.Intn(len(words))])
			}
			doc := mmvalue.Object(
				mmvalue.F("_key", mmvalue.String(fmt.Sprintf("t%d", i))),
				mmvalue.F("body", mmvalue.String(strings.Join(t, " "))))
			if _, err := db.Docs.Insert(tx, "texts", doc); err != nil {
				return err
			}
		}
		return nil
	})
	b.Run("NaiveScanContains", func(b *testing.B) {
		q := `FOR t IN texts FILTER CONTAINS(t.body, 'graph') AND CONTAINS(t.body, 'xml') RETURN t._key`
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("InvertedIndex", func(b *testing.B) {
		if err := db.CreateFullText("texts"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ids := db.FullTextSearch("texts", "graph xml"); len(ids) == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// --- E16: RDF permutation indexes ---

func BenchmarkE16RDF(b *testing.B) {
	db := openDB(b)
	const n = 20000
	r := rand.New(rand.NewSource(16))
	mustUpdate(b, db, func(tx *engine.Txn) error {
		for i := 0; i < n; i++ {
			if err := db.RDF.Insert(tx, "kg", rdfstore.Triple{
				S: fmt.Sprintf("<s%d>", r.Intn(2000)),
				P: fmt.Sprintf("<p%d>", r.Intn(20)),
				O: fmt.Sprintf("<o%d>", r.Intn(2000)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	patterns := map[string]rdfstore.Pattern{
		"SBound_DirectPrimary":  {S: "<s42>"},
		"OBound_ReversePrimary": {O: "<o42>"},
		"PBound_POS":            {P: "<p3>"},
	}
	for name, pat := range patterns {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := db.Engine.View(func(tx *engine.Txn) error {
					_, err := db.RDF.Match(tx, "kg", pat)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("BGPJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := db.Engine.View(func(tx *engine.Txn) error {
				_, err := db.RDF.MatchBGP(tx, "kg", []rdfstore.BGPPattern{
					{S: "<s42>", P: "?p", O: "?x"},
					{S: "?x", P: "?p2", O: "?y"},
				})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E17: two front-ends, one algebra — parse+plan+run cost ---

func BenchmarkE17FrontEnds(b *testing.B) {
	db := openDB(b)
	seedPaper(b, db)
	mm := `FOR c IN customers FILTER c.credit_limit >= 3000 SORT c.name RETURN c.name`
	ms := `SELECT name FROM customers c WHERE credit_limit >= 3000 ORDER BY name`
	b.Run("MMQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := db.Query(mm, nil)
			if err != nil || len(res.Values) != 2 {
				b.Fatalf("res = %v err = %v", res, err)
			}
		}
	})
	b.Run("MSQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := db.SQL(ms, nil)
			if err != nil || len(res.Values) != 2 {
				b.Fatalf("res = %v err = %v", res, err)
			}
		}
	})
}

// --- E18: parallel scan+filter executor vs serial ---
// The parallel executor partitions a FOR-clause scan across a worker pool
// and evaluates residual FILTER predicates per chunk. The `% 7` predicate
// defeats index predicate extraction, so both variants pay a full
// collection scan; only the filter evaluation strategy differs. On a
// single-core host the two are expected to tie — the speedup criterion
// applies at >= 4 cores.

func BenchmarkE18ParallelScan(b *testing.B) {
	const n = 100000
	seed := func(b *testing.B) *core.DB {
		db := openDB(b)
		mustUpdate(b, db, func(tx *engine.Txn) error {
			if err := db.Docs.CreateCollection(tx, "events", catalog.Schemaless); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				doc := mmvalue.MustParseJSON(fmt.Sprintf(
					`{"_key":"e%06d","v":%d,"tag":"t%d"}`, i, i, i%13))
				if _, err := db.Docs.Insert(tx, "events", doc); err != nil {
					return err
				}
			}
			return nil
		})
		return db
	}
	q := `FOR e IN events FILTER e.v % 7 == 3 RETURN e._key`
	serial := query.Options{ParallelThreshold: -1}
	parallel := query.Options{} // default threshold, GOMAXPROCS workers
	run := func(b *testing.B, db *core.DB, opts query.Options, wantParallel bool) {
		res, err := db.QueryOpts(q, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		want := len(res.Values)
		if want == 0 {
			b.Fatal("empty result")
		}
		if got := res.Stats.ParallelScans > 0; got != wantParallel {
			b.Fatalf("ParallelScans = %d, want parallel=%v", res.Stats.ParallelScans, wantParallel)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.QueryOpts(q, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Values) != want {
				b.Fatalf("result drifted: %d vs %d rows", len(res.Values), want)
			}
		}
	}
	b.Run("Serial", func(b *testing.B) {
		db := seed(b)
		run(b, db, serial, false)
	})
	b.Run("Parallel", func(b *testing.B) {
		db := seed(b)
		opts := parallel
		if runtime.GOMAXPROCS(0) < 2 {
			// Force the parallel path so it is still exercised (and
			// measured) on single-core CI hosts.
			opts.MaxParallel = 4
		}
		run(b, db, opts, true)
	})
}

// --- E19: parallel COLLECT/aggregation + SORT + index-range materialization ---
// PR 3 extends the parallel executor from scan+filter to the pipeline tail:
// COLLECT builds per-chunk partial group tables merged in chunk order, SORT
// runs as a chunked stable merge sort, aggregate folds over INTO groups run
// in the parallel RETURN projection, and index-range key lists materialize
// across the pool. Serial and parallel output is byte-identical (pinned by
// TestParallelEquivalence*). As with E18, serial and parallel tie on a
// single-core host — the >= 1.5x speedup criterion applies at >= 4 cores.

func BenchmarkE19ParallelAggSort(b *testing.B) {
	const n = 100000
	seed := func(b *testing.B, withIndex bool) *core.DB {
		db := openDB(b)
		mustUpdate(b, db, func(tx *engine.Txn) error {
			if err := db.Docs.CreateCollection(tx, "events", catalog.Schemaless); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				doc := mmvalue.MustParseJSON(fmt.Sprintf(
					`{"_key":"e%06d","v":%d,"tag":"t%d"}`, i, i, i%13))
				if _, err := db.Docs.Insert(tx, "events", doc); err != nil {
					return err
				}
			}
			if withIndex {
				return db.Docs.CreateIndex(tx, "events", docstore.IndexDef{Name: "by_v", Path: "v"})
			}
			return nil
		})
		return db
	}
	serial := query.Options{ParallelThreshold: -1}
	parallelOpts := func() query.Options {
		opts := query.Options{} // default threshold, GOMAXPROCS workers
		if runtime.GOMAXPROCS(0) < 2 {
			// Force the parallel path so it is still exercised (and
			// measured) on single-core CI hosts.
			opts.MaxParallel = 4
		}
		return opts
	}
	run := func(b *testing.B, db *core.DB, q string, opts query.Options, engaged func(query.Stats) bool) {
		res, err := db.QueryOpts(q, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		want := len(res.Values)
		if want == 0 {
			b.Fatal("empty result")
		}
		if !engaged(res.Stats) {
			b.Fatalf("unexpected execution strategy: %+v", res.Stats)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.QueryOpts(q, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Values) != want {
				b.Fatalf("result drifted: %d vs %d rows", len(res.Values), want)
			}
		}
	}

	// Group-by + aggregates: 13 groups spanning every chunk; the INTO
	// member materialization and the SUM/MAX folds are the hot loops.
	groupQ := `FOR e IN events
	             COLLECT tag = e.tag INTO g
	             RETURN {tag: tag, n: LENGTH(g), total: SUM(g[*].e.v), hi: MAX(g[*].e.v)}`
	b.Run("GroupBy/Serial", func(b *testing.B) {
		db := seed(b, false)
		run(b, db, groupQ, serial, func(s query.Stats) bool { return s.ParallelCollects == 0 })
	})
	b.Run("GroupBy/Parallel", func(b *testing.B) {
		db := seed(b, false)
		run(b, db, groupQ, parallelOpts(), func(s query.Stats) bool { return s.ParallelCollects > 0 })
	})

	// Tie-heavy three-key sort: key evaluation parallelizes 1:1, then the
	// chunked stable merge sort reproduces sort.SliceStable's order.
	sortQ := `FOR e IN events SORT e.tag, e.v % 10 DESC, e.v RETURN e._key`
	b.Run("Sort/Serial", func(b *testing.B) {
		db := seed(b, false)
		run(b, db, sortQ, serial, func(s query.Stats) bool { return s.ParallelSorts == 0 })
	})
	b.Run("Sort/Parallel", func(b *testing.B) {
		db := seed(b, false)
		run(b, db, sortQ, parallelOpts(), func(s query.Stats) bool { return s.ParallelSorts > 0 })
	})

	// Secondary-index range over ~80% of the collection: the B+tree yields
	// the key list serially, then document fetches partition across the pool.
	rangeQ := `FOR e IN events FILTER e.v >= 10000 FILTER e.v < 90000 RETURN e._key`
	b.Run("IndexRange/Serial", func(b *testing.B) {
		db := seed(b, true)
		run(b, db, rangeQ, serial, func(s query.Stats) bool {
			return s.IndexScans > 0 && s.ParallelIndexFetches == 0
		})
	})
	b.Run("IndexRange/Parallel", func(b *testing.B) {
		db := seed(b, true)
		run(b, db, rangeQ, parallelOpts(), func(s query.Stats) bool {
			return s.IndexScans > 0 && s.ParallelIndexFetches > 0
		})
	})
}

// --- E7 ablation: insert throughput vs durability level ---
// DESIGN.md decision #2: memory-first storage with WAL durability. This
// measures what each durability level costs on the document-insert path.

func BenchmarkE7WALDurability(b *testing.B) {
	for _, lvl := range []struct {
		name string
		d    engine.Durability
	}{
		{"Ephemeral", engine.Ephemeral},
		{"BufferedWAL", engine.Buffered},
		{"SyncedWAL", engine.Synced},
	} {
		b.Run(lvl.name, func(b *testing.B) {
			dir := ""
			if lvl.d != engine.Ephemeral {
				dir = b.TempDir()
			}
			db, err := core.Open(core.Options{Dir: dir, Durability: lvl.d})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			mustUpdate(b, db, func(tx *engine.Txn) error {
				return db.Docs.CreateCollection(tx, "w", catalog.Schemaless)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := db.Engine.Update(func(tx *engine.Txn) error {
					_, err := db.Docs.Insert(tx, "w", mmvalue.Object(
						mmvalue.F("_key", mmvalue.String(fmt.Sprintf("d%d", i))),
						mmvalue.F("n", mmvalue.Int(int64(i)))))
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E20: group-commit WAL vs per-commit fsync ---
// DESIGN.md decision #9: concurrent Synced committers coalesce into one
// write+fsync window. This measures the commit throughput each fsync
// discipline sustains as writer concurrency grows: PerCommitFsync pins the
// commit window to 1 (every committer leads its own window and pays its own
// sync), GroupCommit uses the default window so concurrent committers share
// one barrier. The acceptance shape is GroupCommit >= 3x PerCommitFsync at
// 16 writers, with FsyncsSaved > 0 proving commits actually coalesced.

func BenchmarkE20GroupCommit(b *testing.B) {
	for _, mode := range []struct {
		name   string
		window int
	}{
		{"PerCommitFsync", 1},
		{"GroupCommit", 0}, // 0 = wal.DefaultCommitWindow
	} {
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
				// Committers spend their time blocked in fsync, not on-CPU,
				// so the interesting regime is I/O concurrency. On boxes
				// with very few cores the runtime can pin the lone P to the
				// syncing thread and starve the would-be followers; give the
				// scheduler enough Ps that waiting writers actually reach
				// the commit queue during the leader's fsync.
				if prev := runtime.GOMAXPROCS(0); prev < 4 {
					runtime.GOMAXPROCS(4)
					defer runtime.GOMAXPROCS(prev)
				}
				db, err := core.Open(core.Options{
					Dir:               b.TempDir(),
					Durability:        engine.Synced,
					GroupCommitWindow: mode.window,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				mustUpdate(b, db, func(tx *engine.Txn) error {
					return db.Docs.CreateCollection(tx, "w", catalog.Schemaless)
				})
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					n := b.N / writers
					if w < b.N%writers {
						n++
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							err := db.Engine.Update(func(tx *engine.Txn) error {
								_, err := db.Docs.Insert(tx, "w", mmvalue.Object(
									mmvalue.F("_key", mmvalue.String(fmt.Sprintf("w%d-d%d", w, i))),
									mmvalue.F("n", mmvalue.Int(int64(i)))))
								return err
							})
							if err != nil {
								b.Error(err)
								return
							}
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()
				st := db.Engine.WALStats()
				if mode.window == 0 && writers > 1 && st.FsyncsSaved == 0 && b.N > 1 {
					b.Fatalf("group commit never coalesced: %+v", st)
				}
				if b.N > 0 {
					b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/commit")
				}
			})
		}
	}
}

// --- E21: snapshot reads vs locked reads under a concurrent writer ---
// DESIGN.md decision #10: read-only queries can run on an O(1) COW snapshot
// of the engine instead of taking S locks. This measures aggregate reader
// throughput as reader concurrency grows while one writer runs the classic
// MVCC motivating workload: a multi-statement transaction that updates a hot
// document in the readers' keyspace, keeps working (simulated think time plus
// a batch of inserts), and commits Synced. Under strict 2PL its IX lock on
// the keyspace is held from the first update to the post-fsync release, so
// Locked readers convoy behind every transaction (the queue-fair lock
// manager means they cannot barge past the waiting writer either), while
// Snapshot readers never touch the lock manager and keep reading the last
// committed version throughout. The acceptance shape is Snapshot >= 2x
// Locked aggregate reader throughput at 4+ readers, with the SnapshotReads
// stat proving the snapshot path ran.

func BenchmarkE21SnapshotReads(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts query.Options
	}{
		{"Locked", query.Options{}},
		{"Snapshot", query.Options{SnapshotReads: true}},
	} {
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/readers=%d", mode.name, readers), func(b *testing.B) {
				db, err := core.Open(core.Options{
					Dir:        b.TempDir(),
					Durability: engine.Synced,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				const docs = 16
				mustUpdate(b, db, func(tx *engine.Txn) error {
					if err := db.Docs.CreateCollection(tx, "r", catalog.Schemaless); err != nil {
						return err
					}
					if err := db.Docs.CreateCollection(tx, "w", catalog.Schemaless); err != nil {
						return err
					}
					for i := 0; i < docs; i++ {
						if err := db.Docs.Put(tx, "r", fmt.Sprintf("d%03d", i), mmvalue.Object(
							mmvalue.F("n", mmvalue.Int(int64(i))))); err != nil {
							return err
						}
					}
					return nil
				})
				const q = `FOR d IN r FILTER d.n < 0 RETURN d`
				res, err := db.QueryOpts(q, nil, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				want := 0
				if mode.opts.SnapshotReads {
					want = 1
				}
				if res.Stats.SnapshotReads != want {
					b.Fatalf("%s mode routed wrong: stats %+v", mode.name, res.Stats)
				}
				// Each writer transaction updates one hot document in "r",
				// holds its locks across 2ms of think time (the remaining
				// statements of a multi-statement transaction), appends a
				// batch into "w", commits Synced, and immediately starts the
				// next transaction — a busy interactive writer.
				payload := mmvalue.String(strings.Repeat("x", 1024))
				stop := make(chan struct{})
				var writerWG sync.WaitGroup
				var commits int64
				var holdNS int64
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					const batch = 16
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						t0 := time.Now()
						err := db.Engine.Update(func(tx *engine.Txn) error {
							if err := db.Docs.Put(tx, "r", fmt.Sprintf("d%03d", i%docs),
								mmvalue.Object(mmvalue.F("n", mmvalue.Int(int64(i))))); err != nil {
								return err
							}
							time.Sleep(2 * time.Millisecond)
							for j := 0; j < batch; j++ {
								if err := db.Docs.Put(tx, "w", fmt.Sprintf("b%02d", j),
									mmvalue.Object(mmvalue.F("blob", payload))); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							b.Error(err)
							return
						}
						commits++
						holdNS += time.Since(t0).Nanoseconds()
					}
				}()
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					n := b.N / readers
					if r < b.N%readers {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if _, err := db.QueryOpts(q, nil, mode.opts); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				writerWG.Wait()
				if mode.opts.SnapshotReads && db.Engine.SnapshotReads() < uint64(b.N) {
					b.Fatalf("snapshot mode ran %d snapshot txns for %d reads", db.Engine.SnapshotReads(), b.N)
				}
				if commits > 0 {
					b.ReportMetric(float64(holdNS)/float64(commits)/1e6, "writer-txn-ms")
				}
			})
		}
	}
}

// --- E22: the versioned cross-query result cache ---
// DESIGN.md decision #11: read-only pipelines with a compiler-resolved
// read-set are materialized once and served from an LRU keyed by (dialect,
// text, params) and validated against the engine's per-keyspace data version
// vector. Three modes over an aggregation query:
//
//	Uncached   — ResultCacheBytes=0: every call re-executes the pipeline.
//	Warm       — cache on, no writer: after one miss every call is a
//	             version-current hit (acceptance shape: >=5x Uncached).
//	StaleServe — cache on, MaxResultStaleness=100ms, a background writer
//	             keeps invalidating the read-set keyspace: readers are served
//	             the stale entry inside the bound while single-flight
//	             background refreshes recompute it from an MVCC snapshot.
func BenchmarkE22ResultCache(b *testing.B) {
	const q = `FOR d IN items COLLECT g = d.group INTO grp
		RETURN {g: g, n: LENGTH(grp), total: SUM(grp[*].d.n)}`
	seed := func(b *testing.B, db *core.DB) {
		mustUpdate(b, db, func(tx *engine.Txn) error {
			if err := db.Docs.CreateCollection(tx, "items", catalog.Schemaless); err != nil {
				return err
			}
			for i := 0; i < 1000; i++ {
				if err := db.Docs.Put(tx, "items", fmt.Sprintf("d%04d", i), mmvalue.Object(
					mmvalue.F("n", mmvalue.Int(int64(i))),
					mmvalue.F("group", mmvalue.Int(int64(i%8))))); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for _, mode := range []struct {
		name   string
		opts   core.Options
		writer bool
	}{
		{"Uncached", core.Options{}, false},
		{"Warm", core.Options{ResultCacheBytes: 1 << 20}, false},
		{"StaleServe", core.Options{ResultCacheBytes: 1 << 20, MaxResultStaleness: 100 * time.Millisecond}, true},
	} {
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/readers=%d", mode.name, readers), func(b *testing.B) {
				db, err := core.Open(mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				seed(b, db)
				// Materialize once so the timed region measures the steady
				// state of each mode, not the first compile+fill.
				if _, err := db.Query(q, nil); err != nil {
					b.Fatal(err)
				}
				stop := make(chan struct{})
				var writerWG sync.WaitGroup
				if mode.writer {
					writerWG.Add(1)
					go func() {
						defer writerWG.Done()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							err := db.Engine.Update(func(tx *engine.Txn) error {
								return db.Docs.Put(tx, "items", fmt.Sprintf("d%04d", i%1000),
									mmvalue.Object(
										mmvalue.F("n", mmvalue.Int(int64(i))),
										mmvalue.F("group", mmvalue.Int(int64(i%8)))))
							})
							if err != nil {
								b.Error(err)
								return
							}
							time.Sleep(200 * time.Microsecond)
						}
					}()
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					n := b.N / readers
					if r < b.N%readers {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if _, err := db.Query(q, nil); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				writerWG.Wait()
				st := db.ResultCacheStats()
				switch mode.name {
				case "Uncached":
					if st.Hits != 0 || st.Misses != 0 {
						b.Fatalf("cache ran while disabled: %+v", st)
					}
				case "Warm":
					if b.N > 1 && st.Hits == 0 {
						b.Fatalf("warm mode never hit: %+v", st)
					}
				case "StaleServe":
					if b.N > 100 && st.Hits+st.StaleServes == 0 {
						b.Fatalf("stale-serve mode always executed: %+v", st)
					}
					b.ReportMetric(float64(st.StaleServes), "stale-serves")
					b.ReportMetric(float64(st.BackgroundRefreshes), "bg-refreshes")
				}
				b.ReportMetric(st.HitRate(), "hit-rate")
			})
		}
	}
}

// BenchmarkE23Vectorized measures batch-at-a-time columnar execution (E23):
// a scan→filter→aggregate query over a wide-column table, row path vs
// vectorized path, at 1%, 50%, and 100% predicate selectivity. The single
// partition keeps sort-key order aligned with the value order, so at low
// selectivity the per-batch zone stats prune most batches outright and the
// bitslice popcount answers COUNT/SUM without touching values.
func BenchmarkE23Vectorized(b *testing.B) {
	const rows = 20000
	db := openDB(b)
	defer db.Close()
	mustUpdate(b, db, func(tx *engine.Txn) error {
		if err := db.CreateColTable(tx, "events"); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			if err := db.Cols.PutItem(tx, "events",
				mmvalue.String("p0"), mmvalue.Int(int64(i)),
				mmvalue.Object(
					mmvalue.F("v", mmvalue.Int(int64(i))),
					mmvalue.F("pos", mmvalue.Int(int64(i%1000))))); err != nil {
				return err
			}
		}
		return nil
	})
	for _, mode := range []struct {
		name string
		opts query.Options
	}{
		{"Row", query.Options{SnapshotReads: true}},
		{"Vectorized", query.Options{SnapshotReads: true, Vectorized: true}},
	} {
		for _, sel := range []struct {
			name  string
			limit int64
		}{
			{"sel=1%", rows / 100},
			{"sel=50%", rows / 2},
			{"sel=100%", rows},
		} {
			b.Run(mode.name+"/"+sel.name, func(b *testing.B) {
				q := `SELECT COUNT(*) AS n, SUM(v) AS s FROM events WHERE v < @lim`
				params := map[string]mmvalue.Value{"lim": mmvalue.Int(sel.limit)}
				res, err := db.SQLOpts(q, params, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Values[0].GetOr("n").AsInt(); got != sel.limit {
					b.Fatalf("count = %d, want %d", got, sel.limit)
				}
				if mode.name == "Vectorized" && res.Stats.VectorizedBatches == 0 {
					b.Fatalf("vectorized run fell back to the row path: %+v", res.Stats)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.SQLOpts(q, params, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE24ShardedScan measures the shard router (E24): scan+aggregate
// throughput over a hash-partitioned keyspace at Shards ∈ {1, 2, 4} with
// 1/4/16 concurrent snapshot readers, and commit throughput for
// transactions whose write-set spans shards (the 2PC path). Shards=1 runs
// the single-engine fast path — the zero-overhead baseline. The scatter
// stage runs one goroutine per shard, so the scan speedup tracks available
// cores; on a single-core host the fan-out is a wash and the numbers mainly
// price the merge.
func BenchmarkE24ShardedScan(b *testing.B) {
	const rows = 50000
	for _, shards := range []int{1, 2, 4} {
		r, err := shard.Open(shard.Options{
			Dir:        b.TempDir(),
			Durability: engine.Buffered,
			Shards:     shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		const chunk = 5000
		for lo := 0; lo < rows; lo += chunk {
			err := r.Update(func(tx engine.Tx) error {
				for i := lo; i < lo+chunk; i++ {
					if err := tx.Put("items", []byte(fmt.Sprintf("k%08d", i)),
						[]byte(fmt.Sprintf("v%d", i))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("scan/shards=%d/readers=%d", shards, readers), func(b *testing.B) {
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < readers; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							n := 0
							err := r.SnapshotView(func(tx engine.Tx) error {
								return tx.Scan("items", nil, nil, func(k, v []byte) bool {
									n += len(v)
									return true
								})
							})
							if err != nil || n == 0 {
								b.Errorf("scan: n=%d err=%v", n, err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
			})
		}
		b.Run(fmt.Sprintf("commit/shards=%d", shards), func(b *testing.B) {
			before := r.Stats().CrossShardTxns
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := r.Update(func(tx engine.Tx) error {
					// Four keys per transaction: at Shards>1 the write-set
					// almost surely spans shards, exercising prepare +
					// decision + apply instead of the one-batch fast path.
					for j := 0; j < 4; j++ {
						if err := tx.Put("cc", []byte(fmt.Sprintf("c%08d-%d", i, j)),
							[]byte("x")); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if shards > 1 {
				frac := float64(r.Stats().CrossShardTxns-before) / float64(b.N)
				b.ReportMetric(frac, "xshard-frac")
			}
		})
		r.Close()
	}
}

// BenchmarkE25CSRTraversal measures graph traversal over a CSR adjacency
// snapshot (E25): depth-2/3 frontier BFS from the highest-degree hub of a
// preferential-attachment (power-law) graph with ~56k edges, probe path
// (NoCSR) vs CSR path, plus a ColdBuild variant that invalidates the cached
// CSR before every iteration so the number also amortizes the build. The
// warm CSR runs assert the cache reports zero rebuilds across iterations —
// the version-vector validation must recognize the unchanged graph.
func BenchmarkE25CSRTraversal(b *testing.B) {
	const (
		verts = 8000
		mEdge = 7 // out-degree per joining vertex => ~7*verts edges
	)
	db := openDB(b)
	rng := rand.New(rand.NewSource(25))
	if err := db.Update(func(tx engine.Tx) error {
		return db.CreateGraph(tx, "pl")
	}); err != nil {
		b.Fatal(err)
	}
	// Preferential attachment: each joining vertex connects to mEdge
	// distinct earlier vertices sampled proportionally to current degree
	// (the repeated-slot trick), so early vertices become hubs and the
	// degree distribution is power-law. v00000 ends up the top hub.
	slots := []int{0}
	edges := 0
	const chunk = 500
	for lo := 0; lo < verts; lo += chunk {
		hi := lo + chunk
		if hi > verts {
			hi = verts
		}
		err := db.Update(func(tx engine.Tx) error {
			for i := lo; i < hi; i++ {
				key := fmt.Sprintf("v%05d", i)
				if err := db.Graphs.PutVertex(tx, "pl", key, mmvalue.Object()); err != nil {
					return err
				}
				if i == 0 {
					continue
				}
				want := mEdge
				if i < want {
					want = i
				}
				seen := map[int]bool{}
				for len(seen) < want {
					t := slots[rng.Intn(len(slots))]
					if seen[t] {
						continue
					}
					seen[t] = true
					if _, err := db.Graphs.Connect(tx, "pl", key,
						fmt.Sprintf("v%05d", t), "x", mmvalue.Null); err != nil {
						return err
					}
					slots = append(slots, t)
					edges++
				}
				slots = append(slots, i)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if edges < 50000 {
		b.Fatalf("power-law graph too small: %d edges", edges)
	}
	for _, depth := range []struct{ name, q string }{
		{"depth=2", `FOR v IN 1..2 ANY 'v00000' pl RETURN v._key`},
		{"depth=3", `FOR v IN 1..3 ANY 'v00000' pl RETURN v._key`},
	} {
		probeRes, err := db.QueryOpts(depth.q, nil,
			query.Options{SnapshotReads: true, NoCSR: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts query.Options
			cold bool
		}{
			{"Probe", query.Options{SnapshotReads: true, NoCSR: true}, false},
			{"CSR", query.Options{SnapshotReads: true}, false},
			{"ColdBuild", query.Options{SnapshotReads: true}, true},
		} {
			b.Run(mode.name+"/"+depth.name, func(b *testing.B) {
				res, err := db.QueryOpts(depth.q, nil, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Values) != len(probeRes.Values) {
					b.Fatalf("CSR/probe disagree: %d vs %d vertices",
						len(res.Values), len(probeRes.Values))
				}
				if mode.name == "Probe" && res.Stats.CSRTraversals != 0 {
					b.Fatalf("probe mode used CSR: %+v", res.Stats)
				}
				if mode.name != "Probe" && res.Stats.CSRTraversals == 0 {
					b.Fatalf("CSR mode fell back to probes: %+v", res.Stats)
				}
				before := db.CSRStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode.cold {
						db.Graphs.InvalidateCSR("pl")
					}
					if _, err := db.QueryOpts(depth.q, nil, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := db.CSRStats()
				if mode.name == "CSR" && after.Rebuilds != before.Rebuilds {
					b.Fatalf("warm CSR run rebuilt %d times on an unchanged graph",
						after.Rebuilds-before.Rebuilds)
				}
				b.ReportMetric(float64(len(res.Values)), "vertices")
			})
		}
	}
}
