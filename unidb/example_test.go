package unidb_test

import (
	"fmt"
	"log"

	"repro/unidb"
)

// Example shows the minimal open-insert-query flow.
func Example() {
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Update(func(tx *unidb.Txn) error { return tx.CreateCollection("products") })
	db.Execute(`INSERT {_key: "p1", name: "Toy", price: 66} INTO products`, nil)
	db.Execute(`INSERT {_key: "p2", name: "Book", price: 40} INTO products`, nil)

	res, _ := db.Query(`FOR p IN products FILTER p.price > 50 RETURN p.name`, nil)
	fmt.Println(unidb.Strings(res))
	// Output: [Toy]
}

// ExampleDatabase_SQL shows the SQL-flavored front-end over the same data,
// including a PostgreSQL-style JSON operator.
func ExampleDatabase_SQL() {
	db, _ := unidb.Open(unidb.Options{})
	defer db.Close()
	db.Update(func(tx *unidb.Txn) error {
		tx.CreateTable("customer", unidb.TableSchema{
			Columns: []unidb.Column{
				{Name: "id", Type: unidb.TInt, NotNull: true},
				{Name: "orders", Type: unidb.TJSONB},
			},
			PrimaryKey: []string{"id"},
		})
		return tx.InsertRow("customer", unidb.MustParseJSON(
			`{"id":1,"orders":{"Order_no":"0c6df508"}}`))
	})
	res, _ := db.SQL(`SELECT orders->>'Order_no' AS order_no FROM customer c WHERE id = 1`, nil)
	fmt.Println(res.Values[0].GetOr("order_no").AsString())
	// Output: 0c6df508
}

// ExampleDatabase_Update demonstrates a cross-model transaction: four data
// models, one atomic commit.
func ExampleDatabase_Update() {
	db, _ := unidb.Open(unidb.Options{})
	defer db.Close()
	err := db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateCollection("orders"); err != nil {
			return err
		}
		if err := tx.CreateGraph("social"); err != nil {
			return err
		}
		tx.PutDocument("orders", "o1", unidb.MustParseJSON(`{"total": 99}`))
		tx.KVSet("cart", "mary", unidb.MustParseJSON(`"o1"`))
		tx.PutVertex("social", "mary", unidb.MustParseJSON(`{}`))
		return tx.InsertTriple("kg", unidb.Triple{S: "<mary>", P: "<bought>", O: "<o1>"})
	})
	fmt.Println(err)
	// Output: <nil>
}

// ExampleTxn_Query shows a graph traversal from inside a transaction.
func ExampleTxn_Query() {
	db, _ := unidb.Open(unidb.Options{})
	defer db.Close()
	db.Update(func(tx *unidb.Txn) error {
		tx.CreateGraph("net")
		tx.PutVertex("net", "a", unidb.MustParseJSON(`{"name":"Alice"}`))
		tx.PutVertex("net", "b", unidb.MustParseJSON(`{"name":"Bob"}`))
		_, err := tx.Connect("net", "a", "b", "follows")
		return err
	})
	db.View(func(tx *unidb.Txn) error {
		res, _ := tx.Query(`FOR v IN 1..1 OUTBOUND 'a' net.follows RETURN v.name`, nil)
		fmt.Println(unidb.Strings(res))
		return nil
	})
	// Output: [Bob]
}
