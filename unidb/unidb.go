// Package unidb is the public API of the unidb multi-model database — a Go
// reproduction of the system described in Lu & Holubová, "Multi-model Data
// Management: What's New and What's Next?" (EDBT 2017).
//
// One Database stores relational tables, JSON document collections,
// key/value buckets, property graphs, XML/JSON trees, and RDF triples
// against a single integrated backend, and queries all of them with two
// unified front-ends: MMQL (AQL-flavored FOR/FILTER/RETURN) and MSQL
// (SQL-flavored SELECT with PostgreSQL JSON operators and OrientDB-style
// graph navigation). Transactions span every model.
//
// Quickstart:
//
//	db, _ := unidb.Open(unidb.Options{})           // in-memory
//	defer db.Close()
//	db.Execute(`INSERT {_key: "p1", name: "Toy", price: 66} INTO products`, nil)
//	res, _ := db.Query(`FOR p IN products FILTER p.price > 50 RETURN p.name`, nil)
package unidb

import (
	"time"

	"repro/internal/binenc"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/engine"
	"repro/internal/graphstore"
	"repro/internal/inverted"
	"repro/internal/mmvalue"
	"repro/internal/query"
	"repro/internal/rdfstore"
	"repro/internal/relstore"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Value is the unified typed value every model exchanges.
type Value = mmvalue.Value

// Result is a completed query: values plus optimizer statistics.
type Result = query.Result

// Durability levels for Open.
const (
	// Ephemeral keeps the database in memory only.
	Ephemeral = engine.Ephemeral
	// Buffered persists through a write-ahead log flushed at commit.
	Buffered = engine.Buffered
	// Synced additionally fsyncs the log at every commit.
	Synced = engine.Synced
)

// Options configures Open.
type Options struct {
	// Dir is the data directory. Empty means in-memory (Durability is
	// ignored).
	Dir string
	// Durability selects the commit protocol for durable databases.
	Durability engine.Durability
	// GroupCommitWindow tunes Synced group commit: the maximum number of
	// concurrent committers that share one WAL fsync. 0 selects the default
	// window (wal.DefaultCommitWindow, 128); 1 restores per-commit fsync.
	// Larger windows raise ingest throughput under concurrency at no cost
	// to the durability guarantee — a commit is still never acknowledged
	// before its bytes are fsynced.
	GroupCommitWindow int
	// SnapshotReads makes Query/SQL run statements the compiler proves
	// read-only on a lock-free MVCC snapshot: zero lock-manager traffic, no
	// deadlock exposure, and no blocking of (or by) concurrent writers.
	// Mutating statements keep the locked read-write path either way. The
	// same switch exists per call on QueryOptions.
	SnapshotReads bool
	// ResultCacheBytes enables the cross-query result cache with the given
	// byte budget (0 disables it). Read-only queries whose read-set the
	// compiler can resolve are materialized once and served from memory
	// until DDL or DML touches a keyspace they depend on; entries are keyed
	// by (dialect, query text, bound parameters) and validated against a
	// per-keyspace data version vector, so a hit is always byte-identical
	// to re-executing the query.
	ResultCacheBytes int
	// MaxResultStaleness relaxes the result cache's freshness rule: an
	// entry invalidated by DML may still be served for up to this duration
	// past the last instant it was verified current, while a single-flight
	// background goroutine recomputes it from an MVCC snapshot. 0 (the
	// default) keeps strict freshness — version mismatches recompute in the
	// foreground. Only meaningful with ResultCacheBytes > 0.
	MaxResultStaleness time.Duration
	// Vectorized makes Query/SQL run eligible scan→filter→aggregate
	// statements over column tables batch-at-a-time: column vectors with
	// presence bitmaps per ~1k-row batch, predicates as bitset algebra with
	// zone/bitslice pruning, and aggregates finished from per-batch
	// partials. Results are byte-identical to row-at-a-time execution. The
	// same switch exists per call on QueryOptions.
	Vectorized bool
	// Shards hash-partitions every keyspace across this many in-process
	// engine shards, each with its own WAL and lock-free snapshot trees.
	// Point reads and writes route to one shard; scans fan out across all
	// shards concurrently and merge back in key order, byte-identical to the
	// unsharded result. Transactions that write several shards commit
	// atomically through a two-phase protocol over the per-shard
	// group-commit WALs. 0 or 1 keeps the single-engine path with zero
	// overhead; the count is fixed at the first open of a directory.
	Shards int
	// DisableGraphCSR turns off the CSR adjacency-snapshot traversal path.
	// By default, graph traversals and navigation functions in queries that
	// run on an MVCC snapshot execute over a cached immutable CSR image of
	// the graph (rebuilt only when the graph's keyspaces change) instead of
	// per-edge B+tree probes. Results are byte-identical either way; this
	// switch is the ablation / escape hatch. The same opt-out exists per
	// call as QueryOptions.NoCSR.
	DisableGraphCSR bool
}

// Database is a multi-model database handle.
type Database struct {
	db *core.DB
}

// Open creates or recovers a database.
func Open(opts Options) (*Database, error) {
	db, err := core.Open(core.Options{
		Dir:                opts.Dir,
		Durability:         opts.Durability,
		GroupCommitWindow:  opts.GroupCommitWindow,
		SnapshotReads:      opts.SnapshotReads,
		ResultCacheBytes:   opts.ResultCacheBytes,
		MaxResultStaleness: opts.MaxResultStaleness,
		Vectorized:         opts.Vectorized,
		Shards:             opts.Shards,
		DisableGraphCSR:    opts.DisableGraphCSR,
	})
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// Close shuts the database down, flushing the log.
func (d *Database) Close() error { return d.db.Close() }

// Checkpoint snapshots all keyspaces and truncates the WAL (durable
// databases only).
func (d *Database) Checkpoint() error { return d.db.Checkpoint() }

// Query runs an MMQL (AQL-flavored) query. Params bind @name parameters.
func (d *Database) Query(mmql string, params map[string]Value) (*Result, error) {
	return d.db.Query(mmql, params)
}

// Execute is Query for statements run for their side effects (INSERT,
// UPDATE, REMOVE).
func (d *Database) Execute(mmql string, params map[string]Value) (*Result, error) {
	return d.db.Query(mmql, params)
}

// SQL runs an MSQL (SQL-flavored) query.
func (d *Database) SQL(msql string, params map[string]Value) (*Result, error) {
	return d.db.SQL(msql, params)
}

// QueryOptions tunes one execution: parameter bindings, the index ablation
// switch, and the parallel executor knobs. ParallelThreshold is the minimum
// number of elements (scanned rows, COLLECT/SORT input rows, or index-range
// keys) before a pipeline stage moves to the worker pool — 0 means the
// default (1024), negative disables parallel execution entirely. MaxParallel
// caps the worker goroutines (0 means GOMAXPROCS). Parallel and serial
// execution produce byte-identical results; the knobs trade fan-out overhead
// against multi-core scaling. Vectorized (with VectorBatchSize) opts one call
// into the batch-at-a-time columnar executor — also byte-identical.
type QueryOptions = query.Options

// QueryOpts runs MMQL with explicit execution options.
func (d *Database) QueryOpts(mmql string, params map[string]Value, opts QueryOptions) (*Result, error) {
	return d.db.QueryOpts(mmql, params, opts)
}

// SQLOpts runs MSQL with explicit execution options.
func (d *Database) SQLOpts(msql string, params map[string]Value, opts QueryOptions) (*Result, error) {
	return d.db.SQLOpts(msql, params, opts)
}

// --- Prepared statements and the compiled-plan cache ---
//
// Query and SQL already serve repeated statements from an LRU plan cache;
// Prepare additionally surfaces parse errors up front and pins the plan on
// the statement so re-execution skips even the cache lookup. Cached plans
// and prepared statements are invalidated by DDL: any committed
// collection/table/graph create or drop and any index create or drop
// advances a generation counter, and stale plans recompile transparently on
// their next use.

// Statement is a prepared query: parsed once, re-executed with fresh
// parameter bindings. Safe for concurrent use.
type Statement struct {
	s *core.Stmt
}

// Prepare compiles an MMQL statement for repeated execution.
func (d *Database) Prepare(mmql string) (*Statement, error) {
	s, err := d.db.Prepare(mmql)
	if err != nil {
		return nil, err
	}
	return &Statement{s: s}, nil
}

// PrepareSQL compiles an MSQL statement for repeated execution.
func (d *Database) PrepareSQL(msql string) (*Statement, error) {
	s, err := d.db.PrepareSQL(msql)
	if err != nil {
		return nil, err
	}
	return &Statement{s: s}, nil
}

// Exec runs the statement in its own transaction, binding params to @name
// parameters.
func (st *Statement) Exec(params map[string]Value) (*Result, error) { return st.s.Exec(params) }

// Text returns the statement's query text.
func (st *Statement) Text() string { return st.s.Text() }

// ExecIn runs the statement inside an open cross-model transaction.
func (st *Statement) ExecIn(t *Txn, params map[string]Value) (*Result, error) {
	return st.s.ExecTx(t.tx, params)
}

// PlanCacheStats re-exports the plan cache snapshot type.
type PlanCacheStats = core.PlanCacheStats

// PlanCacheStats reports hits, misses, size, and the DDL epoch of the
// compiled-plan cache. PlanCacheStats.HitRate summarizes the counters.
func (d *Database) PlanCacheStats() PlanCacheStats { return d.db.PlanCacheStats() }

// ResultCacheStats re-exports the result cache snapshot type.
type ResultCacheStats = core.ResultCacheStats

// ResultCacheStats reports the cross-query result cache's counters: hits,
// misses, stale serves, background refreshes, invalidations, and the bytes
// held against the configured budget. All zeros when ResultCacheBytes is 0.
func (d *Database) ResultCacheStats() ResultCacheStats { return d.db.ResultCacheStats() }

// KeyspaceVersions snapshots the engine's per-keyspace data version
// counters: each committed transaction advances the counter of every
// keyspace it wrote, and dropping a keyspace deletes its entry. The result
// cache validates entries against these counters; they are exposed here for
// observability and tests. Versions are process-local (they restart at zero
// on Open), so compare them only within one process lifetime.
func (d *Database) KeyspaceVersions() map[string]uint64 { return d.db.KeyspaceVersions() }

// WALStats re-exports the WAL's cumulative activity counters.
type WALStats = wal.Stats

// WALStats reports the write-ahead log's counters: per-record appends,
// batched appends, commit windows, group commits, fsyncs issued, and
// fsyncs saved by committers sharing another committer's barrier. All
// zeros for an in-memory database. Under sharding the counters aggregate
// every shard's log plus the 2PC coordinator log.
func (d *Database) WALStats() WALStats { return d.db.WALStats() }

// ShardStats re-exports the shard router's activity snapshot.
type ShardStats = shard.Stats

// ShardStats reports the partition count, scatter-gather fan-outs,
// cross-shard (two-phase) commits, cumulative prepares, and each shard's
// per-keyspace data versions. For an unsharded database Shards is 1 and the
// cross-shard counters are structurally zero.
func (d *Database) ShardStats() ShardStats { return d.db.ShardStats() }

// CSRStats re-exports the CSR adjacency-snapshot cache counters.
type CSRStats = core.CSRStats

// CSRStats reports the graph CSR cache's counters: cold builds,
// version-mismatch rebuilds, cache reuses, graphs held, and approximate
// resident bytes. Rebuilds staying at zero across repeated traversals of
// an unchanged graph is the cache's design invariant.
func (d *Database) CSRStats() CSRStats { return d.db.CSRStats() }

// Txn is a cross-model transaction: every operation performed through it —
// on any model — commits or aborts atomically.
type Txn struct {
	tx engine.Tx
	db *core.DB
}

// Begin starts a cross-model transaction.
func (d *Database) Begin() (*Txn, error) {
	tx, err := d.db.BeginTx()
	if err != nil {
		return nil, err
	}
	return &Txn{tx: tx, db: d.db}, nil
}

// Commit makes the transaction durable and visible.
func (t *Txn) Commit() error { return t.tx.Commit() }

// Abort rolls the transaction back. The returned error reports a failure
// to write the informational abort record (the rollback itself always
// succeeds); a finished transaction aborts as a nil no-op.
func (t *Txn) Abort() error { return t.tx.Abort() }

// Query runs MMQL inside the transaction.
func (t *Txn) Query(mmql string, params map[string]Value) (*Result, error) {
	return t.db.QueryTx(t.tx, mmql, params)
}

// SQL runs MSQL inside the transaction.
func (t *Txn) SQL(msql string, params map[string]Value) (*Result, error) {
	return t.db.SQLTx(t.tx, msql, params)
}

// Update runs fn in a transaction with automatic deadlock retry, committing
// on nil error.
func (d *Database) Update(fn func(*Txn) error) error {
	return d.db.Update(func(tx engine.Tx) error {
		return fn(&Txn{tx: tx, db: d.db})
	})
}

// View runs fn read-only (any writes are rolled back).
func (d *Database) View(fn func(*Txn) error) error {
	return d.db.View(func(tx engine.Tx) error {
		return fn(&Txn{tx: tx, db: d.db})
	})
}

// SnapshotView runs fn against an immutable MVCC snapshot of the committed
// state. Reads acquire no locks at all — they cannot block writers, be
// blocked by writers, or deadlock — and keep seeing the same state however
// many transactions commit meanwhile. Any write inside fn fails with the
// engine's read-only-transaction error.
func (d *Database) SnapshotView(fn func(*Txn) error) error {
	return d.db.SnapshotView(func(tx engine.Tx) error {
		return fn(&Txn{tx: tx, db: d.db})
	})
}

// SnapshotReads reports how many lock-free snapshot transactions this
// database has served (both SnapshotView calls and read-only queries routed
// to snapshots by the SnapshotReads option).
func (d *Database) SnapshotReads() uint64 { return d.db.EngineSnapshotReads() }

// --- Model handles (usable standalone or inside a Txn) ---

// Collections / documents.

// CreateCollection registers a schemaless document collection.
func (t *Txn) CreateCollection(name string) error {
	return t.db.Docs.CreateCollection(t.tx, name, catalog.Schemaless)
}

// InsertDocument inserts a document (JSON text) into a collection and
// returns its key.
func (t *Txn) InsertDocument(coll string, jsonDoc string) (string, error) {
	v, err := mmvalue.ParseJSON([]byte(jsonDoc))
	if err != nil {
		return "", err
	}
	return t.db.Docs.Insert(t.tx, coll, v)
}

// PutDocument upserts a document Value under a key.
func (t *Txn) PutDocument(coll, key string, doc Value) error {
	return t.db.Docs.Put(t.tx, coll, key, doc)
}

// GetDocument fetches a document by key.
func (t *Txn) GetDocument(coll, key string) (Value, bool, error) {
	return t.db.Docs.Get(t.tx, coll, key)
}

// DeleteDocument removes a document, reporting whether it existed.
func (t *Txn) DeleteDocument(coll, key string) (bool, error) {
	return t.db.Docs.Delete(t.tx, coll, key)
}

// Relational tables.

// TableSchema re-exports the relational schema type.
type TableSchema = relstore.TableSchema

// Column re-exports the relational column type.
type Column = relstore.Column

// Relational column types.
const (
	TInt    = relstore.TInt
	TFloat  = relstore.TFloat
	TString = relstore.TString
	TBool   = relstore.TBool
	TBytes  = relstore.TBytes
	TJSONB  = relstore.TJSONB
	TAny    = relstore.TAny
)

// CreateTable registers a typed relational table.
func (t *Txn) CreateTable(name string, schema TableSchema) error {
	return t.db.Rels.CreateTable(t.tx, name, schema)
}

// InsertRow adds a row (an object Value keyed by column name).
func (t *Txn) InsertRow(table string, row Value) error {
	return t.db.Rels.Insert(t.tx, table, row)
}

// GetRow fetches a row by primary key values.
func (t *Txn) GetRow(table string, pk ...Value) (Value, bool, error) {
	return t.db.Rels.Get(t.tx, table, pk...)
}

// Key/value buckets.

// KVSet stores a value in a bucket.
func (t *Txn) KVSet(bucket, key string, v Value) error {
	return t.db.KV.Set(t.tx, bucket, key, v)
}

// KVGet reads a value from a bucket.
func (t *Txn) KVGet(bucket, key string) (Value, bool, error) {
	return t.db.KV.Get(t.tx, bucket, key)
}

// Graphs.

// Direction re-exports graph traversal direction.
type Direction = graphstore.Direction

// Traversal directions.
const (
	Outbound = graphstore.Outbound
	Inbound  = graphstore.Inbound
	Any      = graphstore.Any
)

// CreateGraph registers a named property graph.
func (t *Txn) CreateGraph(name string) error { return t.db.CreateGraph(t.tx, name) }

// AddVertex stores a vertex document, returning its key.
func (t *Txn) AddVertex(graph string, doc Value) (string, error) {
	return t.db.Graphs.AddVertex(t.tx, graph, doc)
}

// PutVertex upserts a vertex under an explicit key.
func (t *Txn) PutVertex(graph, key string, doc Value) error {
	return t.db.Graphs.PutVertex(t.tx, graph, key, doc)
}

// Connect adds a labeled edge between two vertex keys.
func (t *Txn) Connect(graph, from, to, label string) (string, error) {
	return t.db.Graphs.Connect(t.tx, graph, from, to, label, mmvalue.Null)
}

// Neighbors expands one step from a vertex.
func (t *Txn) Neighbors(graph, vertex string, dir Direction, label string) ([]string, error) {
	ns, err := t.db.Graphs.Neighbors(t.tx, graph, vertex, dir, label)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(ns))
	for i, n := range ns {
		keys[i] = n.VertexKey
	}
	return keys, nil
}

// ShortestPath returns the unweighted shortest path between vertices.
func (t *Txn) ShortestPath(graph, from, to string) ([]string, error) {
	return t.db.Graphs.ShortestPath(t.tx, graph, from, to, graphstore.Outbound, "")
}

// Wide-column tables (Cassandra / DynamoDB model).

// CreateColTable registers a wide-column table addressed by partition and
// sort keys, with per-item attribute sets.
func (t *Txn) CreateColTable(name string) error { return t.db.CreateColTable(t.tx, name) }

// PutItem stores (or extends) the item at (part, sort) with attributes.
func (t *Txn) PutItem(table string, part, sort Value, attrs Value) error {
	return t.db.Cols.PutItem(t.tx, table, part, sort, attrs)
}

// GetItem reconstructs an item as a document.
func (t *Txn) GetItem(table string, part, sort Value) (Value, bool, error) {
	return t.db.Cols.GetItem(t.tx, table, part, sort)
}

// QueryPartition returns all items of a partition in sort-key order as
// documents carrying their attributes.
func (t *Txn) QueryPartition(table string, part Value) ([]Value, error) {
	items, err := t.db.Cols.QueryPartition(t.tx, table, part)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	for i, it := range items {
		out[i] = it.Attrs.Set("_sort", it.Sort)
	}
	return out, nil
}

// XML / JSON trees.

// LoadXML parses and stores an XML document under a name.
func (t *Txn) LoadXML(name string, data []byte) error {
	return t.db.XML.LoadXML(t.tx, name, data)
}

// XPath evaluates an XPath-subset expression, returning the typed value of
// each match.
func (t *Txn) XPath(doc, expr string) ([]Value, error) {
	return t.db.XML.XPathValues(t.tx, doc, expr)
}

// RDF triples.

// Triple re-exports the RDF triple type.
type Triple = rdfstore.Triple

// InsertTriple adds an RDF statement to a named graph.
func (t *Txn) InsertTriple(graph string, tr Triple) error {
	return t.db.RDF.Insert(t.tx, graph, tr)
}

// MatchTriples returns triples matching a pattern; empty strings are
// wildcards.
func (t *Txn) MatchTriples(graph, s, p, o string) ([]Triple, error) {
	return t.db.RDF.Match(t.tx, graph, rdfstore.Pattern{S: s, P: p, O: o})
}

// --- Index management ---

// GINMode selects jsonb_ops or jsonb_path_ops extraction.
type GINMode = inverted.Mode

// GIN modes.
const (
	GINOps     = inverted.OpsMode
	GINPathOps = inverted.PathOpsMode
)

// CreateGIN builds a containment (@>) index over a collection.
func (d *Database) CreateGIN(coll string, mode GINMode) error {
	return d.db.CreateGIN(coll, mode)
}

// CreateFullText builds a full-text index over every string leaf of a
// collection's documents.
func (d *Database) CreateFullText(coll string) error { return d.db.CreateFullText(coll) }

// FullTextSearch finds documents containing every term.
func (d *Database) FullTextSearch(coll, terms string) []string {
	return d.db.FullTextSearch(coll, terms)
}

// IndexDef re-exports the document secondary index definition.
type IndexDef = docstore.IndexDef

// CreateDocIndex builds a B+tree secondary index over a document path.
func (t *Txn) CreateDocIndex(coll string, def IndexDef) error {
	return t.db.Docs.CreateIndex(t.tx, coll, def)
}

// CreateTableIndex builds a B+tree secondary index over a table column.
func (t *Txn) CreateTableIndex(table, name, column string) error {
	return t.db.Rels.CreateIndex(t.tx, table, name, column)
}

// --- Consistency (hybrid consistency models, paper challenge #6) ---

// Replica is an eventually-consistent read endpoint fed by WAL shipping
// with a configurable lag (measured in committed transactions).
type Replica struct {
	r  shard.ReplicaView
	db *core.DB
}

// NewReplica attaches a replica lagging the primary by lagTxns commits.
func (d *Database) NewReplica(lagTxns int) *Replica {
	return &Replica{r: d.db.NewReplica(lagTxns), db: d.db}
}

// KVGet reads a key/value pair at EVENTUAL consistency (no locks, possibly
// stale).
func (r *Replica) KVGet(bucket, key string) (Value, bool) {
	raw, ok := r.r.Get("kv:"+bucket, []byte(key))
	if !ok {
		return mmvalue.Null, false
	}
	v, err := decodeBin(raw)
	if err != nil {
		return mmvalue.Null, false
	}
	return v, true
}

// Lag reports committed-but-unapplied transactions.
func (r *Replica) Lag() int { return r.r.Lag() }

// CatchUp applies everything pending.
func (r *Replica) CatchUp() { r.r.CatchUp() }

// Internal accessor for the reproduction harness (benches, cmd/unibench).
// It exposes the full internal core object; applications should not need it.
func (d *Database) Core() *core.DB { return d.db }

// ParseJSON decodes JSON text into a Value.
func ParseJSON(s string) (Value, error) { return mmvalue.ParseJSON([]byte(s)) }

// MustParseJSON is ParseJSON that panics on error.
func MustParseJSON(s string) Value { return mmvalue.MustParseJSON(s) }

// Scalar Value constructors, mainly for binding statement parameters.

// Int returns an integer Value.
func Int(i int64) Value { return mmvalue.Int(i) }

// Float returns a float Value.
func Float(f float64) Value { return mmvalue.Float(f) }

// Str returns a string Value.
func Str(s string) Value { return mmvalue.String(s) }

// Bool returns a boolean Value.
func Bool(b bool) Value { return mmvalue.Bool(b) }

// Strings extracts string results from a query result.
func Strings(res *Result) []string { return core.Strings(res) }

func decodeBin(raw []byte) (Value, error) { return binenc.Decode(raw) }
