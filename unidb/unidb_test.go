package unidb_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/unidb"
)

func open(t *testing.T) *unidb.Database {
	t.Helper()
	db, err := unidb.Open(unidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := open(t)
	err := db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateCollection("products"); err != nil {
			return err
		}
		if _, err := tx.InsertDocument("products", `{"_key":"p1","name":"Toy","price":66}`); err != nil {
			return err
		}
		_, err := tx.InsertDocument("products", `{"_key":"p2","name":"Book","price":40}`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`FOR p IN products FILTER p.price > 50 RETURN p.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := unidb.Strings(res); !reflect.DeepEqual(got, []string{"Toy"}) {
		t.Fatalf("got %v", got)
	}
}

func TestCrossModelTransactionAtomicity(t *testing.T) {
	db := open(t)
	db.Update(func(tx *unidb.Txn) error {
		tx.CreateCollection("orders")
		tx.CreateGraph("social")
		return tx.CreateTable("customers", unidb.TableSchema{
			Columns: []unidb.Column{
				{Name: "id", Type: unidb.TInt, NotNull: true},
				{Name: "credit", Type: unidb.TInt},
			},
			PrimaryKey: []string{"id"},
		})
	})
	// Abort spans all models.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.InsertRow("customers", unidb.MustParseJSON(`{"id":1,"credit":100}`))
	tx.PutDocument("orders", "o1", unidb.MustParseJSON(`{"total":5}`))
	tx.KVSet("cart", "1", unidb.MustParseJSON(`"o1"`))
	tx.PutVertex("social", "c1", unidb.MustParseJSON(`{}`))
	tx.Abort()
	db.View(func(tx *unidb.Txn) error {
		if _, ok, _ := tx.GetRow("customers", unidb.MustParseJSON(`1`)); ok {
			t.Fatal("row survived abort")
		}
		if _, ok, _ := tx.GetDocument("orders", "o1"); ok {
			t.Fatal("doc survived abort")
		}
		if _, ok, _ := tx.KVGet("cart", "1"); ok {
			t.Fatal("kv survived abort")
		}
		return nil
	})
}

func TestGraphAPI(t *testing.T) {
	db := open(t)
	err := db.Update(func(tx *unidb.Txn) error {
		tx.CreateGraph("g")
		tx.PutVertex("g", "a", unidb.MustParseJSON(`{"name":"A"}`))
		tx.PutVertex("g", "b", unidb.MustParseJSON(`{"name":"B"}`))
		tx.PutVertex("g", "c", unidb.MustParseJSON(`{"name":"C"}`))
		tx.Connect("g", "a", "b", "x")
		_, err := tx.Connect("g", "b", "c", "x")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *unidb.Txn) error {
		ns, err := tx.Neighbors("g", "a", unidb.Outbound, "x")
		if err != nil || !reflect.DeepEqual(ns, []string{"b"}) {
			t.Fatalf("neighbors = %v, %v", ns, err)
		}
		path, err := tx.ShortestPath("g", "a", "c")
		if err != nil || !reflect.DeepEqual(path, []string{"a", "b", "c"}) {
			t.Fatalf("path = %v, %v", path, err)
		}
		return nil
	})
}

func TestXMLAndRDFAPI(t *testing.T) {
	db := open(t)
	err := db.Update(func(tx *unidb.Txn) error {
		if err := tx.LoadXML("prod", []byte(`<product no="1"><name>Toy</name></product>`)); err != nil {
			return err
		}
		return tx.InsertTriple("kg", unidb.Triple{S: "<p1>", P: "<is>", O: "<toy>"})
	})
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *unidb.Txn) error {
		vals, err := tx.XPath("prod", "/product/name")
		if err != nil || len(vals) != 1 || vals[0].AsString() != "Toy" {
			t.Fatalf("xpath = %v, %v", vals, err)
		}
		triples, err := tx.MatchTriples("kg", "", "<is>", "")
		if err != nil || len(triples) != 1 || triples[0].S != "<p1>" {
			t.Fatalf("triples = %v, %v", triples, err)
		}
		return nil
	})
}

func TestDurableReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	db, err := unidb.Open(unidb.Options{Dir: dir, Durability: unidb.Buffered})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *unidb.Txn) error {
		tx.CreateCollection("c")
		_, err := tx.InsertDocument("c", `{"_key":"k","v":1}`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *unidb.Txn) error {
		_, err := tx.InsertDocument("c", `{"_key":"k2","v":2}`)
		return err
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := unidb.Open(unidb.Options{Dir: dir, Durability: unidb.Buffered})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`FOR d IN c SORT d._key RETURN d.v`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 || res.Values[0].AsInt() != 1 || res.Values[1].AsInt() != 2 {
		t.Fatalf("recovered = %v", res.Values)
	}
}

func TestReplicaConsistency(t *testing.T) {
	db := open(t)
	rep := db.NewReplica(1) // lag one transaction
	db.Update(func(tx *unidb.Txn) error { return tx.KVSet("b", "k", unidb.MustParseJSON(`1`)) })
	db.Update(func(tx *unidb.Txn) error { return tx.KVSet("b", "k", unidb.MustParseJSON(`2`)) })
	// STRONG read sees 2; EVENTUAL replica (lag 1) still sees 1.
	db.View(func(tx *unidb.Txn) error {
		v, _, _ := tx.KVGet("b", "k")
		if v.AsInt() != 2 {
			t.Fatalf("primary = %v", v)
		}
		return nil
	})
	if v, ok := rep.KVGet("b", "k"); !ok || v.AsInt() != 1 {
		t.Fatalf("replica = %v, %v (want stale 1)", v, ok)
	}
	if rep.Lag() != 1 {
		t.Fatalf("lag = %d", rep.Lag())
	}
	rep.CatchUp()
	if v, _ := rep.KVGet("b", "k"); v.AsInt() != 2 {
		t.Fatalf("replica after catch-up = %v", v)
	}
}

func TestGINAndFullText(t *testing.T) {
	db := open(t)
	db.Update(func(tx *unidb.Txn) error {
		tx.CreateCollection("docs")
		tx.PutDocument("docs", "a", unidb.MustParseJSON(`{"title":"graph databases rock","tags":["db"]}`))
		tx.PutDocument("docs", "b", unidb.MustParseJSON(`{"title":"cooking pasta","tags":["food"]}`))
		return nil
	})
	if err := db.CreateGIN("docs", unidb.GINPathOps); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateFullText("docs"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`FOR d IN docs FILTER d @> {tags: ['db']} RETURN d._key`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := unidb.Strings(res); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("gin query = %v", got)
	}
	if res.Stats.IndexScans != 1 {
		t.Fatalf("GIN not used: %+v", res.Stats)
	}
	if got := db.FullTextSearch("docs", "graph databases"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("fts = %v", got)
	}
	// Index views follow committed writes.
	db.Update(func(tx *unidb.Txn) error {
		return tx.PutDocument("docs", "c", unidb.MustParseJSON(`{"title":"graph theory"}`))
	})
	if got := db.FullTextSearch("docs", "graph"); len(got) != 2 {
		t.Fatalf("fts after insert = %v", got)
	}
}

func TestSQLFacade(t *testing.T) {
	db := open(t)
	db.Update(func(tx *unidb.Txn) error {
		tx.CreateTable("t", unidb.TableSchema{
			Columns:    []unidb.Column{{Name: "id", Type: unidb.TInt, NotNull: true}, {Name: "v", Type: unidb.TString}},
			PrimaryKey: []string{"id"},
		})
		return tx.InsertRow("t", unidb.MustParseJSON(`{"id":1,"v":"x"}`))
	})
	res, err := db.SQL(`SELECT v FROM t WHERE id = 1`, nil)
	if err != nil || len(res.Values) != 1 {
		t.Fatalf("sql = %v, %v", res, err)
	}
}

func TestWideColumnAPI(t *testing.T) {
	db := open(t)
	err := db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateColTable("metrics"); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := tx.PutItem("metrics",
				unidb.MustParseJSON(`"host1"`), unidb.MustParseJSON(fmt.Sprint(i*10)),
				unidb.MustParseJSON(fmt.Sprintf(`{"cpu":%d}`, 50+i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *unidb.Txn) error {
		item, ok, err := tx.GetItem("metrics", unidb.MustParseJSON(`"host1"`), unidb.MustParseJSON(`10`))
		if err != nil || !ok || item.GetOr("cpu").AsInt() != 51 {
			t.Fatalf("GetItem = %v, %v, %v", item, ok, err)
		}
		items, err := tx.QueryPartition("metrics", unidb.MustParseJSON(`"host1"`))
		if err != nil || len(items) != 3 {
			t.Fatalf("QueryPartition = %v, %v", items, err)
		}
		if items[2].GetOr("_sort").AsInt() != 20 {
			t.Fatalf("sort order = %v", items)
		}
		return nil
	})
	// Wide-column items flow through the unified query language too.
	res, err := db.Query(`FOR m IN metrics FILTER m.cpu >= 51 RETURN m.cpu`, nil)
	if err != nil || len(res.Values) != 2 {
		t.Fatalf("query = %v, %v", res, err)
	}
}

func TestPreparedStatement(t *testing.T) {
	db := open(t)
	err := db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateCollection("products"); err != nil {
			return err
		}
		if _, err := tx.InsertDocument("products", `{"_key":"p1","name":"Toy","price":66}`); err != nil {
			return err
		}
		_, err := tx.InsertDocument("products", `{"_key":"p2","name":"Book","price":40}`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`FOR p IN products FILTER p.price > @min SORT p.name RETURN p.name`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec(map[string]unidb.Value{"min": unidb.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	if got := unidb.Strings(res); !reflect.DeepEqual(got, []string{"Toy"}) {
		t.Fatalf("min=50: got %v", got)
	}
	res, err = stmt.Exec(map[string]unidb.Value{"min": unidb.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got := unidb.Strings(res); !reflect.DeepEqual(got, []string{"Book", "Toy"}) {
		t.Fatalf("min=10: got %v", got)
	}
	// Repeated Query calls hit the plan cache.
	if _, err := db.Query(`FOR p IN products RETURN p._key`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`FOR p IN products RETURN p._key`, nil); err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("no plan cache hits: %+v", st)
	}
}

func TestResultCachePublicAPI(t *testing.T) {
	db, err := unidb.Open(unidb.Options{ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Update(func(tx *unidb.Txn) error {
		if err := tx.CreateCollection("products"); err != nil {
			return err
		}
		if _, err := tx.InsertDocument("products", `{"_key":"p1","name":"Toy","price":66}`); err != nil {
			return err
		}
		_, err := tx.InsertDocument("products", `{"_key":"p2","name":"Book","price":40}`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = `FOR p IN products FILTER p.price > 50 RETURN p.name`
	first, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unidb.Strings(first), unidb.Strings(second)) {
		t.Fatalf("cached result differs: %v vs %v", first.Values, second.Values)
	}
	st := db.ResultCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want Hits=1 Misses=1 Entries=1", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	vers := db.KeyspaceVersions()
	if vers["doc:products"] == 0 {
		t.Fatalf("keyspace versions missing doc:products: %v", vers)
	}
	// DML to the read-set keyspace invalidates; the next run recomputes and
	// the version counter has advanced.
	if _, err := db.Execute(`INSERT {_key: "p3", name: "Lamp", price: 70} INTO products`, nil); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := unidb.Strings(after); !reflect.DeepEqual(got, []string{"Toy", "Lamp"}) {
		t.Fatalf("post-invalidation result = %v", got)
	}
	if st := db.ResultCacheStats(); st.Misses != 2 {
		t.Fatalf("stats after DML = %+v, want Misses=2", st)
	}
	if v2 := db.KeyspaceVersions(); v2["doc:products"] <= vers["doc:products"] {
		t.Fatalf("doc:products version did not advance: %v -> %v", vers, v2)
	}
}
