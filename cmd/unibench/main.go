// Command unibench generates the UniBench multi-model dataset and runs the
// three workloads of the paper (A: insertion/reading, B: cross-model
// queries, C: cross-model transactions), printing the result tables that
// EXPERIMENTS.md records for E7–E9.
//
// Usage:
//
//	unibench [-customers 2000] [-products 500] [-workers 4] [-txns 100] [-n 5000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/unibench"
)

func main() {
	customers := flag.Int("customers", 2000, "number of customers")
	products := flag.Int("products", 500, "number of products")
	workers := flag.Int("workers", 4, "workload C concurrency")
	txns := flag.Int("txns", 100, "workload C transactions per worker")
	n := flag.Int("n", 5000, "workload A operations per model")
	flag.Parse()

	cfg := unibench.DefaultConfig()
	cfg.Customers = *customers
	cfg.Products = *products

	db, err := core.Open(core.Options{})
	if err != nil {
		fail(err)
	}
	defer db.Close()

	fmt.Println("== UniBench (Lu, CIDR 2017) — unidb reproduction ==")
	start := time.Now()
	ds, err := unibench.Generate(db, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset: %d customers, %d products, %d orders, %d friendships, %d cart entries, %d feedback triples (%.1fs)\n\n",
		ds.Customers, ds.Products, ds.Orders, ds.Friends, ds.CartItems, ds.Feedback,
		time.Since(start).Seconds())

	fmt.Printf("-- Workload A: insertion and reading (%d ops per model) --\n", *n)
	a, err := unibench.RunWorkloadA(db, *n)
	if err != nil {
		fail(err)
	}
	for _, m := range a {
		fmt.Println("  " + m.String())
	}

	fmt.Println("\n-- Workload B: cross-model queries --")
	b, err := unibench.RunWorkloadB(db, cfg)
	if err != nil {
		fail(err)
	}
	for _, m := range b {
		fmt.Printf("  %-40s %12s\n", m.Name, m.Elapsed.Round(time.Microsecond))
	}

	fmt.Printf("\n-- Workload C: cross-model transactions (%d workers x %d txns) --\n", *workers, *txns)
	c, err := unibench.RunWorkloadC(db, cfg, *workers, *txns)
	if err != nil {
		fail(err)
	}
	fmt.Println("  " + c.String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "unibench:", err)
	os.Exit(1)
}
