package main

import "testing"

func rec(name string, ns float64) record { return record{Name: name, NsPerOp: ns} }

func TestCompareFlagsRegressionsBeyondThreshold(t *testing.T) {
	base := report{Benchmarks: []record{
		rec("BenchmarkA-8", 100),
		rec("BenchmarkB-8", 100),
		rec("BenchmarkC-8", 100),
		rec("BenchmarkGone-8", 50),
	}}
	fresh := report{Benchmarks: []record{
		rec("BenchmarkA-16", 125), // +25% -> regression
		rec("BenchmarkB-16", 109), // +9%  -> within threshold
		rec("BenchmarkC-16", 70),  // -30% -> improvement
		rec("BenchmarkNew-16", 10),
	}}
	res := compare(base, fresh, 10)

	byName := map[string]diff{}
	for _, d := range res.Diffs {
		byName[d.Name] = d
	}
	if len(byName) != 3 {
		t.Fatalf("compared %d benchmarks, want 3", len(byName))
	}
	if d := byName["BenchmarkA"]; !d.Regression || d.DeltaPct != 25 {
		t.Errorf("A = %+v, want regression at +25%%", d)
	}
	if d := byName["BenchmarkB"]; d.Regression {
		t.Errorf("B flagged as regression at %+.1f%%", d.DeltaPct)
	}
	if d := byName["BenchmarkC"]; d.Regression || d.DeltaPct != -30 {
		t.Errorf("C = %+v, want -30%% improvement", d)
	}
	if len(res.OnlyInBase) != 1 || res.OnlyInBase[0] != "BenchmarkGone" {
		t.Errorf("OnlyInBase = %v", res.OnlyInBase)
	}
	if len(res.OnlyInFresh) != 1 || res.OnlyInFresh[0] != "BenchmarkNew" {
		t.Errorf("OnlyInFresh = %v", res.OnlyInFresh)
	}
	// Sorted worst-first: A (+25) before B (+9) before C (-30).
	if res.Diffs[0].Name != "BenchmarkA" || res.Diffs[2].Name != "BenchmarkC" {
		t.Errorf("diff order = %v, %v, %v", res.Diffs[0].Name, res.Diffs[1].Name, res.Diffs[2].Name)
	}
}

// TestComparePerBenchOverrides pins the widened gate for fsync-dominated
// benchmarks: a +25% swing on an E7/E20-style bench stays green under its
// 40% override while the same swing on a compute bench is flagged, and an
// improvement beyond the wide gate still reads as improvement.
func TestComparePerBenchOverrides(t *testing.T) {
	base := report{Benchmarks: []record{
		rec("BenchmarkE7WALDurability/SyncedWAL-8", 100000),
		rec("BenchmarkE20GroupCommit/writers=16-8", 100000),
		rec("BenchmarkCompute-8", 100),
	}}
	fresh := report{Benchmarks: []record{
		rec("BenchmarkE7WALDurability/SyncedWAL-8", 125000), // +25%, inside 40% gate
		rec("BenchmarkE20GroupCommit/writers=16-8", 145000), // +45%, beyond even the wide gate
		rec("BenchmarkCompute-8", 125),                      // +25%, beyond the 10% default
	}}
	overrides, err := parsePerBench(`E7WALDurability=40,E20GroupCommit=40`)
	if err != nil {
		t.Fatal(err)
	}
	res := compare(base, fresh, 10, overrides...)
	byName := map[string]diff{}
	for _, d := range res.Diffs {
		byName[d.Name] = d
	}
	if d := byName["BenchmarkE7WALDurability/SyncedWAL"]; d.Regression || d.Threshold != 40 {
		t.Errorf("E7 = %+v, want +25%% inside a 40%% gate", d)
	}
	if d := byName["BenchmarkE20GroupCommit/writers=16"]; !d.Regression || d.Threshold != 40 {
		t.Errorf("E20 = %+v, want +45%% flagged even by the 40%% gate", d)
	}
	if d := byName["BenchmarkCompute"]; !d.Regression || d.Threshold != 10 {
		t.Errorf("Compute = %+v, want +25%% flagged by the 10%% default", d)
	}
}

func TestParsePerBenchRejectsMalformedRules(t *testing.T) {
	for _, bad := range []string{"noequals", "rx=notanumber", "(unclosed=10"} {
		if _, err := parsePerBench(bad); err == nil {
			t.Errorf("parsePerBench(%q) accepted a malformed rule", bad)
		}
	}
	rules, err := parsePerBench("")
	if err != nil || rules != nil {
		t.Errorf("empty spec = %v, %v; want no rules, no error", rules, err)
	}
}

func TestCompareZeroBaselineIsNotRegression(t *testing.T) {
	base := report{Benchmarks: []record{rec("BenchmarkZ", 0)}}
	fresh := report{Benchmarks: []record{rec("BenchmarkZ", 100)}}
	res := compare(base, fresh, 10)
	if len(res.Diffs) != 1 || res.Diffs[0].Regression {
		t.Fatalf("zero-baseline diff = %+v; must not divide by zero or flag", res.Diffs)
	}
}

func TestNormalizeStripsOnlyGomaxprocsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkE4PointLookup/btree-8": "BenchmarkE4PointLookup/btree",
		"BenchmarkE3GIN/NoIndex":         "BenchmarkE3GIN/NoIndex",
		"BenchmarkX/n=10-16":             "BenchmarkX/n=10",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
