package main

import "testing"

func rec(name string, ns float64) record { return record{Name: name, NsPerOp: ns} }

func TestCompareFlagsRegressionsBeyondThreshold(t *testing.T) {
	base := report{Benchmarks: []record{
		rec("BenchmarkA-8", 100),
		rec("BenchmarkB-8", 100),
		rec("BenchmarkC-8", 100),
		rec("BenchmarkGone-8", 50),
	}}
	fresh := report{Benchmarks: []record{
		rec("BenchmarkA-16", 125), // +25% -> regression
		rec("BenchmarkB-16", 109), // +9%  -> within threshold
		rec("BenchmarkC-16", 70),  // -30% -> improvement
		rec("BenchmarkNew-16", 10),
	}}
	res := compare(base, fresh, 10)

	byName := map[string]diff{}
	for _, d := range res.Diffs {
		byName[d.Name] = d
	}
	if len(byName) != 3 {
		t.Fatalf("compared %d benchmarks, want 3", len(byName))
	}
	if d := byName["BenchmarkA"]; !d.Regression || d.DeltaPct != 25 {
		t.Errorf("A = %+v, want regression at +25%%", d)
	}
	if d := byName["BenchmarkB"]; d.Regression {
		t.Errorf("B flagged as regression at %+.1f%%", d.DeltaPct)
	}
	if d := byName["BenchmarkC"]; d.Regression || d.DeltaPct != -30 {
		t.Errorf("C = %+v, want -30%% improvement", d)
	}
	if len(res.OnlyInBase) != 1 || res.OnlyInBase[0] != "BenchmarkGone" {
		t.Errorf("OnlyInBase = %v", res.OnlyInBase)
	}
	if len(res.OnlyInFresh) != 1 || res.OnlyInFresh[0] != "BenchmarkNew" {
		t.Errorf("OnlyInFresh = %v", res.OnlyInFresh)
	}
	// Sorted worst-first: A (+25) before B (+9) before C (-30).
	if res.Diffs[0].Name != "BenchmarkA" || res.Diffs[2].Name != "BenchmarkC" {
		t.Errorf("diff order = %v, %v, %v", res.Diffs[0].Name, res.Diffs[1].Name, res.Diffs[2].Name)
	}
}

func TestCompareZeroBaselineIsNotRegression(t *testing.T) {
	base := report{Benchmarks: []record{rec("BenchmarkZ", 0)}}
	fresh := report{Benchmarks: []record{rec("BenchmarkZ", 100)}}
	res := compare(base, fresh, 10)
	if len(res.Diffs) != 1 || res.Diffs[0].Regression {
		t.Fatalf("zero-baseline diff = %+v; must not divide by zero or flag", res.Diffs)
	}
}

func TestNormalizeStripsOnlyGomaxprocsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkE4PointLookup/btree-8": "BenchmarkE4PointLookup/btree",
		"BenchmarkE3GIN/NoIndex":         "BenchmarkE3GIN/NoIndex",
		"BenchmarkX/n=10-16":             "BenchmarkX/n=10",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
