// benchdiff compares two benchjson reports (see cmd/benchjson) and flags
// per-benchmark ns/op regressions beyond a threshold.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold 10] [-per-bench 'rx=pct,...'] [-fail] BASELINE.json FRESH.json
//
// Benchmarks are matched by name after stripping the trailing -GOMAXPROCS
// suffix, so reports taken on machines with different core counts still
// line up. Benchmarks present on only one side are listed but are not
// regressions. With -fail, any regression makes the exit status 1 —
// off by default because one-shot sweeps (-benchtime 1x) are noisy and a
// hard gate would flake; CI runs it in report-only mode.
//
// -per-bench widens (or tightens) the gate for benchmarks whose timer is
// dominated by something noisier than the code under test. The WAL fsync
// benches (E7 durability, E20 group commit) time the disk's sync latency,
// which swings far more run-to-run than compute-bound benches do, so the
// committed gate gives them a wider band instead of loosening the global
// threshold for everyone. Rules are comma-separated `regex=pct` pairs
// matched against the normalized name; the first match wins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// diff is one matched benchmark pair.
type diff struct {
	Name       string
	Base, New  float64 // ns/op
	DeltaPct   float64 // (new-base)/base * 100
	Threshold  float64 // gate applied to this benchmark
	Regression bool
}

// benchThreshold is one per-benchmark gate override.
type benchThreshold struct {
	rx  *regexp.Regexp
	pct float64
}

// parsePerBench parses comma-separated `regex=pct` pairs.
func parsePerBench(spec string) ([]benchThreshold, error) {
	if spec == "" {
		return nil, nil
	}
	var rules []benchThreshold
	for _, pair := range strings.Split(spec, ",") {
		eq := strings.LastIndex(pair, "=")
		if eq < 0 {
			return nil, fmt.Errorf("per-bench rule %q: want regex=pct", pair)
		}
		rx, err := regexp.Compile(pair[:eq])
		if err != nil {
			return nil, fmt.Errorf("per-bench rule %q: %w", pair, err)
		}
		pct, err := strconv.ParseFloat(pair[eq+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("per-bench rule %q: %w", pair, err)
		}
		rules = append(rules, benchThreshold{rx: rx, pct: pct})
	}
	return rules, nil
}

// thresholdFor picks the gate for one normalized benchmark name: the first
// matching override, else the global default.
func thresholdFor(name string, defaultPct float64, overrides []benchThreshold) float64 {
	for _, o := range overrides {
		if o.rx.MatchString(name) {
			return o.pct
		}
	}
	return defaultPct
}

// result is the full comparison outcome.
type result struct {
	Diffs       []diff
	OnlyInBase  []string
	OnlyInFresh []string
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// compare matches benchmarks by normalized name and computes ns/op deltas;
// a regression is a slowdown of more than the benchmark's gate — the first
// matching per-bench override, or thresholdPct when none matches.
func compare(base, fresh report, thresholdPct float64, overrides ...benchThreshold) result {
	baseBy := map[string]record{}
	for _, b := range base.Benchmarks {
		baseBy[normalize(b.Name)] = b
	}
	var res result
	seen := map[string]bool{}
	for _, f := range fresh.Benchmarks {
		name := normalize(f.Name)
		seen[name] = true
		b, ok := baseBy[name]
		if !ok {
			res.OnlyInFresh = append(res.OnlyInFresh, name)
			continue
		}
		d := diff{Name: name, Base: b.NsPerOp, New: f.NsPerOp}
		d.Threshold = thresholdFor(name, thresholdPct, overrides)
		if b.NsPerOp > 0 {
			d.DeltaPct = (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			d.Regression = d.DeltaPct > d.Threshold
		}
		res.Diffs = append(res.Diffs, d)
	}
	for name := range baseBy {
		if !seen[name] {
			res.OnlyInBase = append(res.OnlyInBase, name)
		}
	}
	sort.Slice(res.Diffs, func(i, j int) bool { return res.Diffs[i].DeltaPct > res.Diffs[j].DeltaPct })
	sort.Strings(res.OnlyInBase)
	sort.Strings(res.OnlyInFresh)
	return res
}

func load(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	perBench := flag.String("per-bench", "", "per-benchmark threshold overrides: comma-separated regex=pct, first match wins")
	failOnRegression := flag.Bool("fail", false, "exit 1 if any regression exceeds the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 10] [-per-bench 'rx=pct,...'] [-fail] BASELINE.json FRESH.json")
		os.Exit(2)
	}
	overrides, err := parsePerBench(*perBench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	res := compare(base, fresh, *threshold, overrides...)

	regressions := 0
	for _, d := range res.Diffs {
		marker := "  "
		if d.Regression {
			marker = "!!"
			regressions++
		} else if d.DeltaPct < -d.Threshold {
			marker = "++"
		}
		gate := ""
		if d.Threshold != *threshold {
			gate = fmt.Sprintf("  (gate %.0f%%)", d.Threshold)
		}
		fmt.Printf("%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n",
			marker, d.Name, d.Base, d.New, d.DeltaPct, gate)
	}
	for _, name := range res.OnlyInBase {
		fmt.Printf("-- %-60s (removed: in baseline only)\n", name)
	}
	for _, name := range res.OnlyInFresh {
		fmt.Printf("** %-60s (new: no baseline)\n", name)
	}
	fmt.Printf("\nbenchdiff: %d compared, %d regression(s) beyond %+.0f%%, %d new, %d removed\n",
		len(res.Diffs), regressions, *threshold, len(res.OnlyInFresh), len(res.OnlyInBase))
	if regressions > 0 && *failOnRegression {
		os.Exit(1)
	}
}
