// benchdiff compares two benchjson reports (see cmd/benchjson) and flags
// per-benchmark ns/op regressions beyond a threshold.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold 10] [-fail] BASELINE.json FRESH.json
//
// Benchmarks are matched by name after stripping the trailing -GOMAXPROCS
// suffix, so reports taken on machines with different core counts still
// line up. Benchmarks present on only one side are listed but are not
// regressions. With -fail, any regression makes the exit status 1 —
// off by default because one-shot sweeps (-benchtime 1x) are noisy and a
// hard gate would flake; CI runs it in report-only mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// diff is one matched benchmark pair.
type diff struct {
	Name       string
	Base, New  float64 // ns/op
	DeltaPct   float64 // (new-base)/base * 100
	Regression bool
}

// result is the full comparison outcome.
type result struct {
	Diffs       []diff
	OnlyInBase  []string
	OnlyInFresh []string
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// compare matches benchmarks by normalized name and computes ns/op deltas;
// a regression is a slowdown of more than thresholdPct percent.
func compare(base, fresh report, thresholdPct float64) result {
	baseBy := map[string]record{}
	for _, b := range base.Benchmarks {
		baseBy[normalize(b.Name)] = b
	}
	var res result
	seen := map[string]bool{}
	for _, f := range fresh.Benchmarks {
		name := normalize(f.Name)
		seen[name] = true
		b, ok := baseBy[name]
		if !ok {
			res.OnlyInFresh = append(res.OnlyInFresh, name)
			continue
		}
		d := diff{Name: name, Base: b.NsPerOp, New: f.NsPerOp}
		if b.NsPerOp > 0 {
			d.DeltaPct = (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			d.Regression = d.DeltaPct > thresholdPct
		}
		res.Diffs = append(res.Diffs, d)
	}
	for name := range baseBy {
		if !seen[name] {
			res.OnlyInBase = append(res.OnlyInBase, name)
		}
	}
	sort.Slice(res.Diffs, func(i, j int) bool { return res.Diffs[i].DeltaPct > res.Diffs[j].DeltaPct })
	sort.Strings(res.OnlyInBase)
	sort.Strings(res.OnlyInFresh)
	return res
}

func load(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	failOnRegression := flag.Bool("fail", false, "exit 1 if any regression exceeds the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 10] [-fail] BASELINE.json FRESH.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	res := compare(base, fresh, *threshold)

	regressions := 0
	for _, d := range res.Diffs {
		marker := "  "
		if d.Regression {
			marker = "!!"
			regressions++
		} else if d.DeltaPct < -*threshold {
			marker = "++"
		}
		fmt.Printf("%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			marker, d.Name, d.Base, d.New, d.DeltaPct)
	}
	for _, name := range res.OnlyInBase {
		fmt.Printf("-- %-60s (removed: in baseline only)\n", name)
	}
	for _, name := range res.OnlyInFresh {
		fmt.Printf("** %-60s (new: no baseline)\n", name)
	}
	fmt.Printf("\nbenchdiff: %d compared, %d regression(s) beyond %+.0f%%, %d new, %d removed\n",
		len(res.Diffs), regressions, *threshold, len(res.OnlyInFresh), len(res.OnlyInBase))
	if regressions > 0 && *failOnRegression {
		os.Exit(1)
	}
}
