// Command unidb is an interactive shell for the unidb multi-model database.
//
// Usage:
//
//	unidb [-dir data] [-sql]
//
// Lines are MMQL by default (or MSQL with -sql / after ".sql"). Meta
// commands: .help, .mmql, .sql, .keyspaces, .checkpoint, .quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/unidb"
)

func main() {
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	useSQL := flag.Bool("sql", false, "start in MSQL mode")
	flag.Parse()

	opts := unidb.Options{Dir: *dir}
	if *dir != "" {
		opts.Durability = unidb.Buffered
	}
	db, err := unidb.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	mode := "mmql"
	if *useSQL {
		mode = "msql"
	}
	fmt.Println("unidb shell — multi-model database (EDBT'17 tutorial reproduction)")
	fmt.Println(`type ".help" for help, ".quit" to exit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s> ", mode)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`meta commands:
  .mmql        switch to MMQL (FOR/FILTER/RETURN)
  .sql         switch to MSQL (SELECT/FROM/WHERE)
  .checkpoint  snapshot + truncate WAL (durable databases)
  .quit        exit
  .keyspaces   list engine keyspaces and sizes
anything else runs as a query in the current language`)
		case line == ".mmql":
			mode = "mmql"
		case line == ".sql":
			mode = "msql"
		case line == ".keyspaces":
			for _, ks := range db.Core().Engine.Keyspaces() {
				fmt.Printf("  %-40s %d keys\n", ks, db.Core().Engine.KeyspaceLen(ks))
			}
		case line == ".checkpoint":
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("checkpointed")
			}
		default:
			run(db, mode, line)
		}
	}
}

func run(db *unidb.Database, mode, text string) {
	var res *unidb.Result
	var err error
	if mode == "msql" {
		res, err = db.SQL(text, nil)
	} else {
		res, err = db.Query(text, nil)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Values {
		fmt.Println(v)
	}
	fmt.Printf("-- %d result(s); scans: %d full, %d indexed\n",
		len(res.Values), res.Stats.FullScans, res.Stats.IndexScans)
}
