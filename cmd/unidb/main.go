// Command unidb is an interactive shell for the unidb multi-model database.
//
// Usage:
//
//	unidb [-dir data] [-sql] [-shards N]
//
// Lines are MMQL by default (or MSQL with -sql / after ".sql"). Meta
// commands: .help, .mmql, .sql, .keyspaces, .stats, .checkpoint, .quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/unidb"
)

func main() {
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	useSQL := flag.Bool("sql", false, "start in MSQL mode")
	shards := flag.Int("shards", 0, "hash-partition keyspaces across N engine shards (0/1 = single engine)")
	flag.Parse()

	opts := unidb.Options{Dir: *dir, Shards: *shards}
	if *dir != "" {
		opts.Durability = unidb.Buffered
	}
	db, err := unidb.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	mode := "mmql"
	if *useSQL {
		mode = "msql"
	}
	fmt.Println("unidb shell — multi-model database (EDBT'17 tutorial reproduction)")
	fmt.Println(`type ".help" for help, ".quit" to exit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s> ", mode)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`meta commands:
  .mmql        switch to MMQL (FOR/FILTER/RETURN)
  .sql         switch to MSQL (SELECT/FROM/WHERE)
  .checkpoint  snapshot + truncate WAL (durable databases)
  .quit        exit
  .keyspaces   list engine keyspaces and sizes
  .stats       WAL, plan/result cache, and shard counters
anything else runs as a query in the current language`)
		case line == ".mmql":
			mode = "mmql"
		case line == ".sql":
			mode = "msql"
		case line == ".keyspaces":
			for _, ks := range db.Core().Keyspaces() {
				fmt.Printf("  %-40s %d keys\n", ks, db.Core().KeyspaceLen(ks))
			}
		case line == ".stats":
			printStats(db)
		case line == ".checkpoint":
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("checkpointed")
			}
		default:
			run(db, mode, line)
		}
	}
}

func printStats(db *unidb.Database) {
	ws := db.WALStats()
	fmt.Printf("wal: appends=%d batched=%d windows=%d group-commits=%d fsyncs=%d saved=%d\n",
		ws.Appends, ws.BatchedAppends, ws.Windows, ws.GroupCommits, ws.Fsyncs, ws.FsyncsSaved)
	ps := db.PlanCacheStats()
	fmt.Printf("plans: hits=%d misses=%d size=%d epoch=%d\n", ps.Hits, ps.Misses, ps.Size, ps.Epoch)
	rs := db.ResultCacheStats()
	fmt.Printf("results: hits=%d misses=%d stale-serves=%d refreshes=%d bytes=%d\n",
		rs.Hits, rs.Misses, rs.StaleServes, rs.BackgroundRefreshes, rs.Bytes)
	ss := db.ShardStats()
	fmt.Printf("shards: n=%d fanouts=%d cross-shard-txns=%d prepares=%d\n",
		ss.Shards, ss.ShardFanouts, ss.CrossShardTxns, ss.PreparedTxns)
	for i, vers := range ss.KeyspaceVersions {
		fmt.Printf("  shard %d: %d keyspaces versioned\n", i, len(vers))
	}
}

func run(db *unidb.Database, mode, text string) {
	var res *unidb.Result
	var err error
	if mode == "msql" {
		res, err = db.SQL(text, nil)
	} else {
		res, err = db.Query(text, nil)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Values {
		fmt.Println(v)
	}
	fmt.Printf("-- %d result(s); scans: %d full, %d indexed\n",
		len(res.Values), res.Stats.FullScans, res.Stats.IndexScans)
}
