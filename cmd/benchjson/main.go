// benchjson converts `go test -bench` text output into machine-readable
// JSON so benchmark runs (E1–E18) can be diffed across commits.
//
// Usage:
//
//	go test -run '^$' -bench . . | go run ./cmd/benchjson -o BENCH_1.json
//
// Each benchmark line becomes one record carrying its iteration count,
// ns/op, and any extra ReportMetric values (txn/s, index-items, ...).
// Context lines (goos/goarch/pkg/cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkE1RecommendationQuery/MMQL-8   12345   98765 ns/op   42 txn/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// metricPair matches one "value unit" pair within the tail of a bench line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+([^\s]+)`)

func parse(lines *bufio.Scanner) (report, error) {
	var rep report
	for lines.Scan() {
		line := strings.TrimRight(lines.Text(), " \t")
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return rep, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		rec := record{Name: m[1], Iterations: iters}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			val, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if pair[2] == "ns/op" {
				rec.NsPerOp = val
				continue
			}
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[pair[2]] = val
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	return rep, lines.Err()
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output file (- for stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	rep, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
