// Command unidblint runs the in-tree invariant analyzer suite
// (internal/lint) over the module: lock pairing, dropped errors, AST
// exhaustiveness, executor determinism, and transaction lifecycle. It is
// stdlib-only — the importer type-checks the module and its standard-library
// dependencies from source — and exits nonzero when any invariant is
// violated.
//
// Usage:
//
//	go run ./cmd/unidblint ./...            # whole module (the usual form)
//	go run ./cmd/unidblint ./internal/wal   # one package
//	go run ./cmd/unidblint -list            # describe the analyzers
//
// Suppression: a `//unidblint:ignore <analyzer> <why>` comment on (or
// directly above) the offending line, or a path fragment registered in the
// suite configuration (internal/lint/config.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	runner := lint.DefaultRunner()
	if *list {
		for _, a := range runner.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	paths, err := resolvePatterns(loader, flag.Args())
	if err != nil {
		fatal(err)
	}
	diags, err := runner.Run(loader, paths)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(relativize(loader.ModuleDir, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "unidblint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// resolvePatterns expands command-line package patterns. Supported forms:
// "./..." (whole module), "./x/y" and "x/y" (module-relative directories),
// and fully-qualified import paths.
func resolvePatterns(l *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "all" || arg == l.ModulePath+"/...":
			pkgs, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasPrefix(arg, l.ModulePath):
			add(arg)
		default:
			rel := strings.TrimPrefix(arg, "./")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "." || rel == "" {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + filepath.ToSlash(rel))
			}
		}
	}
	return out, nil
}

// relativize shortens diagnostic file paths to module-relative form.
func relativize(moduleDir string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(moduleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
		s = d.String()
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unidblint:", err)
	os.Exit(1)
}
