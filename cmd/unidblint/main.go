// Command unidblint runs the in-tree invariant analyzer suite
// (internal/lint) over the module: per-package checks (lock pairing,
// dropped errors, AST exhaustiveness, executor determinism, transaction
// lifecycle, ...) plus the whole-program analyzers built on interprocedural
// lock summaries (lockorder, snapshotpure). It is stdlib-only — the
// importer type-checks the module and its standard-library dependencies
// from source — and exits nonzero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/unidblint ./...            # whole module (the usual form)
//	go run ./cmd/unidblint ./internal/wal   # one package
//	go run ./cmd/unidblint -json ./...      # machine-readable diagnostics
//	go run ./cmd/unidblint -C dir ./...     # lint the module rooted at dir
//	go run ./cmd/unidblint -list            # describe the analyzers
//
// Suppression: a `//unidblint:ignore <analyzer> <why>` comment on (or
// directly above) the offending line, or a path fragment registered in the
// suite configuration (internal/lint/config.go) — fragments match complete,
// slash-bounded path segments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unidblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	chdir := fs.String("C", ".", "module directory to lint (defaults to the current directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runner := lint.DefaultRunner()
	if *list {
		for _, a := range runner.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		for _, a := range runner.ProgramAnalyzers {
			fmt.Fprintf(stdout, "%-12s %s (whole-program)\n", a.Name(), a.Doc())
		}
		return 0
	}

	loader, err := lint.NewLoader(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "unidblint:", err)
		return 1
	}
	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "unidblint:", err)
		return 1
	}
	diags, err := runner.Run(loader, paths)
	if err != nil {
		fmt.Fprintln(stderr, "unidblint:", err)
		return 1
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relPath(loader.ModuleDir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "unidblint:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(loader.ModuleDir, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "unidblint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// resolvePatterns expands command-line package patterns. Supported forms:
// "./..." (whole module), "./x/y" and "x/y" (module-relative directories),
// and fully-qualified import paths.
func resolvePatterns(l *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "all" || arg == l.ModulePath+"/...":
			pkgs, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasPrefix(arg, l.ModulePath):
			add(arg)
		default:
			rel := strings.TrimPrefix(arg, "./")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "." || rel == "" {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + filepath.ToSlash(rel))
			}
		}
	}
	return out, nil
}

// relPath shortens a file path to module-relative form when possible.
func relPath(moduleDir, file string) string {
	if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// relativize shortens diagnostic file paths to module-relative form.
func relativize(moduleDir string, d lint.Diagnostic) string {
	d.Pos.Filename = relPath(moduleDir, d.Pos.Filename)
	return d.String()
}
