package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenListing runs the CLI in-process against the fixture module under
// testdata/module and diffs the complete diagnostic listing against the
// committed golden file. The fixture covers the three visibility cases in
// one listing: a real violation (reported), an `//unidblint:ignore`
// suppression (absent), and a violation under examples/ caught by path
// suppression (absent) — plus the whole-program lockorder diagnostics for
// mutexes the order table does not rank.
func TestGoldenListing(t *testing.T) {
	golden := readGolden(t, "golden.txt")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "module"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture module has violations); stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != golden {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	if want := "unidblint: 3 violation(s)\n"; stderr.String() != want {
		t.Errorf("stderr = %q, want %q", stderr.String(), want)
	}
}

// TestGoldenJSON pins the -json wire format the CI artifact step uploads.
func TestGoldenJSON(t *testing.T) {
	golden := readGolden(t, "golden.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "module"), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != golden {
		t.Errorf("golden JSON mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestCleanModuleExitsZero checks the success path: restricting the run to
// the examples package (whose violation is path-suppressed) must produce an
// empty listing and exit 0.
func TestCleanModuleExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "module"), "./examples/demo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected empty listing, got: %s", stdout.String())
	}
}

// TestListIncludesProgramAnalyzers keeps -list honest about the
// whole-program suite.
func TestListIncludesProgramAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"lockcheck", "lockorder", "snapshotpure"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
