// Package demo lives under examples/, which the default configuration
// path-suppresses: its violation must not appear in the CLI listing.
package demo

import "sync"

var mu sync.Mutex

// Broken leaks the lock on every path — suppressed by the /examples/ rule.
func Broken() {
	mu.Lock()
}
