// Package fixturemod is the CLI golden-test module: a tiny package with one
// real lockcheck violation, one ignore-suppressed violation, and a lock
// nesting between two mutexes the default order table has never heard of —
// which the whole-program lockorder analyzer must flag as unranked.
package fixturemod

import "sync"

type S struct{ mu sync.Mutex }

type T struct{ mu sync.Mutex }

var (
	gs S
	gt T
)

// leak forgets the unlock on the early-return path.
func leak(cond bool) bool {
	gs.mu.Lock()
	if cond {
		return true
	}
	gs.mu.Unlock()
	return false
}

// acknowledged has the same bug but carries a suppression comment; the CLI
// listing must not contain it.
func acknowledged(cond bool) bool {
	//unidblint:ignore lockcheck golden-test suppression
	gs.mu.Lock()
	if cond {
		return true
	}
	gs.mu.Unlock()
	return false
}

// nested nests two mutexes that are not in the declared lock order.
func nested() {
	gs.mu.Lock()
	gt.mu.Lock()
	gt.mu.Unlock()
	gs.mu.Unlock()
}
