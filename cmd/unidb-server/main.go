// Command unidb-server serves a unidb database over HTTP.
//
// Usage:
//
//	unidb-server [-addr :8529] [-dir data]
//
// See internal/server for the endpoint list.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8529", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	flag.Parse()

	opts := core.Options{Dir: *dir}
	if *dir != "" {
		opts.Durability = engine.Buffered
	}
	db, err := core.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("unidb-server listening on %s (dir=%q)\n", *addr, *dir)
	if err := http.ListenAndServe(*addr, server.New(db)); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
